"""Parallel entry-function analysis — the paper's per-entry-thread P2 (§4).

The paper analyzes each entry function on its own thread; this module
streams the entry list through persistent worker *processes* (CPython
threads would serialize on the GIL for this CPU-bound walk).  The
protocol:

* each worker initializes **once** — inheriting the parent's
  :class:`~repro.ir.Program`, :class:`~repro.core.collector.
  InformationCollector`, and P1.5 relevance handle zero-copy via fork
  where the platform allows it, or unpickling one program copy (seeded
  with the parent's collector facts and precomputed dead-block masks)
  under spawn — and then pulls small entry *batches* from the pool's
  shared call queue until it drains.  Work-stealing by construction: a
  pathological entry delays only the batch it sits in, never a whole
  per-worker shard;
* the parent sorts entries by instruction count, largest first, so the
  expensive entries dispatch while every worker is still busy and the
  cheap tail levels the finish;
* each batch returns a small ``(entry name, EntryOutcome)`` chunk —
  bounding peak pickle size to one batch, never a whole shard — and the
  parent folds chunks into its outcome map as they complete;
* live checker objects never cross the process boundary: workers rebuild
  their checker set from a *spec name* (see
  :func:`repro.typestate.checkers.checkers_from_spec`) at initialization;
* the final merge (:func:`merge_outcomes`) visits entries in
  ``entry_list`` order regardless of completion order, deduplicating
  with the same ``dedup_key`` logic the sequential explorer applies
  in-process — instruction uids survive both fork and pickling, so
  cross-worker duplicates collapse exactly as they do today.

Determinism: every field of the merged result except wall-clock timings
is identical to the sequential run's, byte for byte.  Any failure to
parallelize (unpicklable program, pool setup failure, worker crash) logs
a one-line warning, cancels every not-yet-started batch
(``cancel_futures`` — surviving workers must not burn CPU the
sequential fallback is about to need), and the caller falls back to the
in-process path — never a crash.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..ir import Function, Program
from ..races.shared import SharedAccess
from ..typestate import PossibleBug
from ..typestate.checkers import checkers_from_spec, configure_checkers
from .analyzer import PathExplorer
from .collector import InformationCollector
from .config import AnalysisConfig
from .report import AnalysisStats, EntryStats

log = logging.getLogger("repro.parallel")

#: test-only crash injection: a worker raises when a batch contains this
#: entry name (see tests/test_parallel.py's cancel-on-failure regression)
_CRASH_ENV = "REPRO_PARALLEL_TEST_CRASH_ENTRY"
#: test-only observability: workers touch one file per completed batch
#: under this directory, so tests can count how many batches actually ran
_TOUCH_ENV = "REPRO_PARALLEL_TEST_TOUCH_DIR"


def _fork_available() -> bool:
    """Whether workers can inherit the parent's memory (Linux/BSD fork)."""
    return "fork" in multiprocessing.get_all_start_methods()


@dataclass
class EntryOutcome:
    """One entry function's exploration record: its stats row plus the
    bugs *first sighted* while exploring it (after per-entry dedup), and
    the shared-state accesses the race checker recorded there (empty
    unless a race checker is registered).

    The three counters are this entry's *deltas* of the explorer's
    cumulative typestate/repeat counters — each is a deterministic
    function of the entry alone, which is what lets the incremental
    cache serve a single entry's outcome and still reproduce the
    whole-run ``--stats`` totals exactly."""

    stats: EntryStats
    bugs: List[PossibleBug] = field(default_factory=list)
    accesses: List[SharedAccess] = field(default_factory=list)
    aware_updates: int = 0
    unaware_updates: int = 0
    repeated_bugs: int = 0


@dataclass
class ShardResult:
    """Everything one contiguous run of entries through a single explorer
    returns (the sequential path is the single-shard case)."""

    entries: List[EntryOutcome] = field(default_factory=list)
    aware_updates: int = 0
    unaware_updates: int = 0
    repeated_bugs: int = 0


@dataclass
class ParallelRun:
    """What :func:`run_parallel` hands back: every explored entry's
    outcome (keyed by entry name), plus how the run was shaped."""

    outcomes: Dict[str, EntryOutcome] = field(default_factory=dict)
    workers: int = 1
    batches: int = 0


def explore_entries(
    explorer: PathExplorer,
    entries: Sequence[Function],
    per_entry_dedup: bool = False,
) -> List[EntryOutcome]:
    """Walk ``entries`` in order through ``explorer``, slicing the shared
    ``possible_bugs`` list per entry.  Used by both the in-process path
    and the worker processes, so their per-entry records agree exactly.

    ``per_entry_dedup`` resets the explorer's cross-entry seen-key sets
    before each entry, making every outcome's bug/access lists a function
    of that entry *alone* — required whenever outcomes may be cached or
    produced by different workers (a cumulative list would silently omit
    bugs first sighted under an entry that happened to run earlier in the
    same process).  The merged result is identical either way:
    :func:`merge_outcomes` re-applies first-sighting-in-entry-order
    dedup, and every drop it performs there is counted in the same
    ``dropped_repeated_bugs`` total the cumulative mode produces."""
    outcomes: List[EntryOutcome] = []
    for entry in entries:
        if per_entry_dedup:
            explorer.seen_bug_keys.clear()
            explorer.seen_access_keys.clear()
        before = len(explorer.possible_bugs)
        accesses_before = len(explorer.shared_accesses)
        aware_before = explorer.store.aware_updates
        unaware_before = explorer.store.unaware_updates
        repeated_before = explorer.repeated_bugs
        started = time.perf_counter()
        explorer.explore(entry)
        outcomes.append(
            EntryOutcome(
                stats=EntryStats(
                    name=entry.name,
                    paths=explorer.paths,
                    steps=explorer.steps,
                    wall_seconds=time.perf_counter() - started,
                    budget_exhausted=explorer.budget_exhausted,
                    paths_pruned=explorer.paths_pruned,
                    blocks_pruned=explorer.blocks_pruned,
                ),
                bugs=explorer.possible_bugs[before:],
                accesses=explorer.shared_accesses[accesses_before:],
                aware_updates=explorer.store.aware_updates - aware_before,
                unaware_updates=explorer.store.unaware_updates - unaware_before,
                repeated_bugs=explorer.repeated_bugs - repeated_before,
            )
        )
    return outcomes


def shard_result(explorer: PathExplorer, outcomes: List[EntryOutcome]) -> ShardResult:
    """Package one explorer's cumulative counters with its entry outcomes."""
    return ShardResult(
        entries=outcomes,
        aware_updates=explorer.store.aware_updates,
        unaware_updates=explorer.store.unaware_updates,
        repeated_bugs=explorer.repeated_bugs,
    )


# ---------------------------------------------------------------------------
# Worker side: initialize-once world, then stream batches
# ---------------------------------------------------------------------------


class PrecomputedRelevance:
    """A read-only stand-in for
    :class:`~repro.presolve.prune.RelevancePreAnalysis` built from
    dead-block uid sets (and per-entry armed checker names) the *parent*
    already computed: same ``dead_blocks``/``armed_names`` surface the
    explorer consumes, none of the summary-index build cost.  Block uids
    are assigned at IR construction and survive both fork and pickling,
    so the sets index the worker's program copy exactly."""

    supported = True

    def __init__(
        self,
        masks: Dict[str, FrozenSet[int]],
        armed: Optional[Dict[str, Optional[FrozenSet[str]]]] = None,
    ):
        self._masks = masks
        self._armed = armed or {}

    def dead_blocks(self, entry: Function) -> FrozenSet[int]:
        return self._masks.get(entry.name, frozenset())

    def armed_names(self, entry: Function) -> Optional[FrozenSet[str]]:
        return self._armed.get(entry.name)


@dataclass
class _WorkerInit:
    """Everything one worker needs to build its world, exactly once.

    Fork mode passes the live objects (``program``/``collector``/
    ``relevance``) — initargs reach forked children through inherited
    memory, never the pickle machinery.  Spawn mode passes the program
    as bytes pickled *once in the parent* (so an unpicklable program
    fails fast, before any process starts) plus the parent collector's
    may-return facts and precomputed dead-block masks, sparing every
    spawned worker the P1 fixpoint re-derivation and the entire P1.5
    summary-index build."""

    config: AnalysisConfig
    checker_spec: str
    program: Optional[Program] = None
    collector: Optional[InformationCollector] = None
    relevance: Optional[object] = None
    program_bytes: Optional[bytes] = None
    cached_facts: Optional[Dict[str, Tuple[bool, bool]]] = None
    dead_masks: Optional[Dict[str, FrozenSet[int]]] = None
    armed_masks: Optional[Dict[str, Optional[FrozenSet[str]]]] = None
    #: P1.7 may-alias partition.  One field serves both modes: fork
    #: inherits the live object zero-copy, spawn pickles it with the
    #: initargs (MayAliasPartition defines ``__reduce__``); either way
    #: workers never re-run the unification pass.
    partition: Optional[object] = None
    #: P1.8 must-alias facts, shipped the same way (MustAliasFacts also
    #: defines ``__reduce__``; its memo tables rebuild lazily per worker)
    flow_facts: Optional[object] = None


@dataclass
class _WorkerWorld:
    """The per-process state every batch reuses."""

    program: Program
    config: AnalysisConfig
    checkers: list
    collector: InformationCollector
    relevance: Optional[object]
    partition: Optional[object] = None
    flow_facts: Optional[object] = None


#: built by :func:`_init_worker` when the process starts, read by every
#: batch that process executes
_WORLD: Optional[_WorkerWorld] = None


def _init_worker(init: _WorkerInit) -> None:
    """Pool initializer: runs once per worker process, before any batch."""
    global _WORLD
    if init.program is not None:
        program = init.program
        collector = init.collector
        relevance = init.relevance
    else:
        program = pickle.loads(init.program_bytes)
        collector = InformationCollector(program, cached_facts=init.cached_facts)
        relevance = (
            PrecomputedRelevance(init.dead_masks, init.armed_masks)
            if init.dead_masks is not None
            else None
        )
    checkers = configure_checkers(
        checkers_from_spec(init.checker_spec, collector), init.config
    )
    _WORLD = _WorkerWorld(
        program, init.config, checkers, collector, relevance, init.partition,
        init.flow_facts,
    )


def _run_batch(entry_names: List[str]) -> List[Tuple[str, EntryOutcome]]:
    """Worker-process batch body: explore one small batch of entries
    against the initialize-once world and return its outcome chunk.

    Each batch gets a **fresh** :class:`PathExplorer` (construction is
    cheap; the expensive state — program, collector facts, relevance —
    lives in the world) running with per-entry dedup, so every returned
    outcome is a function of its entry alone, independent of which
    worker pulled which batch in which order."""
    world = _WORLD
    assert world is not None, "worker batch before initializer ran"
    crash = os.environ.get(_CRASH_ENV)
    if crash and crash in entry_names:
        raise RuntimeError(f"injected test crash on entry {crash!r}")
    entries = []
    for name in entry_names:
        func = world.program.lookup(name)
        if func is None:  # pragma: no cover - names come from this program
            raise KeyError(f"entry function {name!r} not found in worker program")
        entries.append(func)
    explorer = PathExplorer(
        world.program,
        world.config,
        world.checkers,
        indirect_resolver=(
            world.collector.indirect_targets
            if world.config.resolve_function_pointers
            else None
        ),
        relevance=world.relevance,
        partition=world.partition,
        flow_facts=world.flow_facts,
    )
    outcomes = explore_entries(explorer, entries, per_entry_dedup=True)
    touch_dir = os.environ.get(_TOUCH_ENV)
    if touch_dir:
        with open(os.path.join(touch_dir, f"batch-{os.getpid()}-{entry_names[0]}"), "w"):
            pass
    return list(zip(entry_names, outcomes))


# ---------------------------------------------------------------------------
# Parent side: size-sorted batching, streaming dispatch, incremental fold
# ---------------------------------------------------------------------------


def _entry_cost(func: Function) -> int:
    """Dispatch-order cost proxy: the entry's own instruction count.
    Exact path-explosion cost is unknowable up front; instruction count
    is free (already computed for P1's function database) and correlates
    well enough that the big entries land in the first batches."""
    return func.instruction_count()


def _make_batches(
    entry_list: Sequence[Function], batch_size: int
) -> List[List[str]]:
    """Size-sorted (largest first, ties in entry-list order — the sort is
    stable) name batches of at most ``batch_size`` entries each."""
    ordered = sorted(entry_list, key=lambda func: -_entry_cost(func))
    return [
        [func.name for func in ordered[start : start + batch_size]]
        for start in range(0, len(ordered), batch_size)
    ]


def run_parallel(
    program: Program,
    config: AnalysisConfig,
    checker_spec: str,
    entry_list: Sequence[Function],
    collector: Optional[InformationCollector] = None,
    relevance: Optional[object] = None,
    partition: Optional[object] = None,
    flow_facts: Optional[object] = None,
) -> Optional[ParallelRun]:
    """Stream ``entry_list`` through a pool of persistent workers.

    Returns a :class:`ParallelRun` with one outcome per entry, or
    ``None`` when parallel execution is unavailable or fails mid-run
    (the caller then runs the in-process path; a one-line warning
    explains why — never a crash).  On a mid-run worker failure every
    not-yet-started batch is cancelled before falling back, so the pool
    does not race the sequential re-run for CPU.
    """
    workers = min(config.resolved_workers(), len(entry_list))
    use_fork = _fork_available() and config.parallel_start_method != "spawn"
    if use_fork:
        init = _WorkerInit(
            config=config,
            checker_spec=checker_spec,
            program=program,
            collector=collector or InformationCollector(program),
            relevance=relevance,
            partition=partition,
            flow_facts=flow_facts,
        )
    else:
        # Spawned workers must receive the program by value; an
        # unpicklable program cannot be analyzed in parallel.  (Worker
        # crashes — e.g. unpicklable *results* — surface from
        # future.result() below and take the same fallback.)
        try:
            program_bytes = pickle.dumps(program)
        except Exception as exc:
            log.warning(
                "parallel analysis disabled: program does not pickle (%s); "
                "falling back to sequential", exc,
            )
            return None
        cached_facts = None
        if collector is not None:
            cached_facts = {
                name: (info.may_return_negative, info.may_return_zero)
                for name, info in collector.functions.items()
            }
        dead_masks = None
        armed_masks = None
        if config.prune and relevance is not None:
            dead_masks = {
                func.name: frozenset(relevance.dead_blocks(func))
                for func in entry_list
            }
            armed_of = getattr(relevance, "armed_names", None)
            if armed_of is not None:
                armed_masks = {func.name: armed_of(func) for func in entry_list}
        init = _WorkerInit(
            config=config,
            checker_spec=checker_spec,
            program_bytes=program_bytes,
            cached_facts=cached_facts,
            dead_masks=dead_masks,
            armed_masks=armed_masks,
            partition=partition,
            flow_facts=flow_facts,
        )
    batch_size = config.resolved_batch_size(len(entry_list), workers)
    batches = _make_batches(entry_list, batch_size)
    outcomes: Dict[str, EntryOutcome] = {}
    try:
        mp_context = multiprocessing.get_context("fork" if use_fork else "spawn")
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=mp_context,
            initializer=_init_worker,
            initargs=(init,),
        ) as pool:
            futures = [pool.submit(_run_batch, batch) for batch in batches]
            try:
                for future in as_completed(futures):
                    for name, outcome in future.result():
                        outcomes[name] = outcome
            except BaseException:
                # One failed batch fails the whole parallel attempt; the
                # queued remainder must not keep running (double work —
                # the sequential fallback re-explores everything).
                pool.shutdown(wait=False, cancel_futures=True)
                raise
    except Exception as exc:
        log.warning("parallel analysis failed (%s); falling back to sequential", exc)
        return None
    if len(outcomes) != len(entry_list):  # pragma: no cover - defensive
        log.warning(
            "parallel analysis returned %d/%d outcomes; falling back to sequential",
            len(outcomes), len(entry_list),
        )
        return None
    return ParallelRun(outcomes=outcomes, workers=workers, batches=len(batches))


# ---------------------------------------------------------------------------
# Deterministic merge
# ---------------------------------------------------------------------------


def merge_outcomes(
    entry_list: Sequence[Function],
    outcome_by_entry: Dict[str, EntryOutcome],
    stats: AnalysisStats,
) -> Tuple[List[PossibleBug], List[SharedAccess]]:
    """Fold per-entry outcomes into ``stats`` and one deduplicated bug
    list plus one deduplicated shared-access list, visiting entries in
    ``entry_list`` order regardless of which process (or completion
    order) produced them.

    Dedup bookkeeping mirrors the sequential explorer exactly: a bug's
    (or access's) first sighting in global entry order is kept; every
    later sighting — whether already dropped where the outcome was
    produced (counted in that outcome's ``repeated_bugs`` delta) or
    dropped here — is a repeat.  Cross-process access dedup matters
    because each worker's explorer only saw its own batches: two workers
    can both record e.g. an access inside a helper inlined from entries
    they explored independently.
    """
    merged: List[PossibleBug] = []
    merged_accesses: List[SharedAccess] = []
    seen_bug_keys = set()
    seen_access_keys = set()
    repeated = 0
    aware = 0
    unaware = 0
    for entry in entry_list:
        outcome = outcome_by_entry[entry.name]
        stats.per_entry.append(outcome.stats)
        stats.explored_paths += outcome.stats.paths
        stats.executed_steps += outcome.stats.steps
        if outcome.stats.budget_exhausted:
            stats.budget_exhausted_entries += 1
        stats.blocks_pruned += outcome.stats.blocks_pruned
        stats.paths_pruned += outcome.stats.paths_pruned
        repeated += outcome.repeated_bugs
        aware += outcome.aware_updates
        unaware += outcome.unaware_updates
        for bug in outcome.bugs:
            key = bug.dedup_key
            if key in seen_bug_keys:
                repeated += 1
                continue
            seen_bug_keys.add(key)
            merged.append(bug)
        for access in outcome.accesses:
            access_key = access.dedup_key
            if access_key in seen_access_keys:
                continue
            seen_access_keys.add(access_key)
            merged_accesses.append(access)
    stats.typestates_aware = aware
    stats.typestates_unaware = unaware
    stats.dropped_repeated_bugs = repeated
    return merged, merged_accesses


def merge_shard_results(
    entry_list: Sequence[Function],
    shards: Sequence[Sequence[Function]],
    results: Sequence[ShardResult],
    stats: AnalysisStats,
) -> Tuple[List[PossibleBug], List[SharedAccess]]:
    """Shard-shaped adapter over :func:`merge_outcomes` (the sequential
    path and older callers package outcomes as :class:`ShardResult`
    lists).  Summing per-outcome deltas reproduces each shard's
    cumulative counters exactly — every counter increment happens inside
    some entry's ``explore()`` window — so the fold needs nothing from
    the shard wrapper itself."""
    outcome_by_entry: Dict[str, EntryOutcome] = {}
    for shard, result in zip(shards, results):
        for entry, outcome in zip(shard, result.entries):
            outcome_by_entry[entry.name] = outcome
    return merge_outcomes(entry_list, outcome_by_entry, stats)
