"""Parallel entry-function analysis — the paper's per-entry-thread P2 (§4).

The paper analyzes each entry function on its own thread; this module
shards the entry list across worker *processes* (CPython threads would
serialize on the GIL for this CPU-bound walk).  The protocol:

* the parent shards the entry list round-robin and hands every worker a
  slice of entry *names* and a checker *spec name* — live checker
  objects never cross the process boundary (see
  :func:`repro.typestate.checkers.checkers_from_spec`);
* workers receive the :class:`~repro.ir.Program` zero-copy via fork
  inheritance where the platform allows it, and as pickled bytes
  otherwise (each worker then unpickles its own copy and derives its own
  :class:`~repro.core.collector.InformationCollector`);
* each worker runs a **fresh** :class:`~repro.core.analyzer.PathExplorer`
  over its shard and returns a picklable :class:`ShardResult`;
* the parent merges shard results **in entry-list order**, regardless of
  completion order, deduplicating across shards with the same
  ``dedup_key`` logic the sequential explorer applies in-process —
  instruction uids survive both fork and pickling, so cross-worker
  duplicates collapse exactly as they do today.

Determinism: every field of the merged result except wall-clock timings
is identical to the sequential run's, byte for byte.  Any failure to
parallelize (unpicklable program or results, pool setup failure, worker
crash) logs a one-line warning and the caller falls back to the
in-process path — never a crash.
"""

from __future__ import annotations

import logging
import multiprocessing
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..ir import Function, Program
from ..races.shared import SharedAccess
from ..typestate import PossibleBug
from ..typestate.checkers import checkers_from_spec
from .analyzer import PathExplorer
from .collector import InformationCollector
from .config import AnalysisConfig
from .report import AnalysisStats, EntryStats

log = logging.getLogger("repro.parallel")

#: (program, collector) a forked worker inherits from the parent — set
#: around pool use, read once per shard in :func:`_run_shard`.  Fork
#: inheritance skips re-pickling a multi-megabyte program per worker,
#: which would otherwise rival the analysis itself in cost.
_FORK_STATE: Optional[Tuple[Program, InformationCollector]] = None


def _fork_available() -> bool:
    """Whether workers can inherit the parent's memory (Linux/BSD fork)."""
    return "fork" in multiprocessing.get_all_start_methods()


@dataclass
class EntryOutcome:
    """One entry function's exploration record: its stats row plus the
    bugs *first sighted* while exploring it (after in-shard dedup), and
    the shared-state accesses the race checker recorded there (empty
    unless a race checker is registered).

    The three counters are this entry's *deltas* of the explorer's
    cumulative typestate/repeat counters — each is a deterministic
    function of the entry alone, which is what lets the incremental
    cache serve a single entry's outcome and still reproduce the
    whole-run ``--stats`` totals exactly."""

    stats: EntryStats
    bugs: List[PossibleBug] = field(default_factory=list)
    accesses: List[SharedAccess] = field(default_factory=list)
    aware_updates: int = 0
    unaware_updates: int = 0
    repeated_bugs: int = 0


@dataclass
class ShardResult:
    """Everything one shard (sequential run = the single shard) returns."""

    entries: List[EntryOutcome] = field(default_factory=list)
    aware_updates: int = 0
    unaware_updates: int = 0
    repeated_bugs: int = 0


def explore_entries(
    explorer: PathExplorer,
    entries: Sequence[Function],
    per_entry_dedup: bool = False,
) -> List[EntryOutcome]:
    """Walk ``entries`` in order through ``explorer``, slicing the shared
    ``possible_bugs`` list per entry.  Used by both the in-process path
    and the worker processes, so their per-entry records agree exactly.

    ``per_entry_dedup`` resets the explorer's cross-entry seen-key sets
    before each entry, making every outcome's bug/access lists a function
    of that entry *alone* — required whenever outcomes may be cached (a
    cumulative list would silently omit bugs first sighted under an
    entry that later changes).  The merged result is identical either
    way: :func:`merge_shard_results` re-applies first-sighting-in-entry-
    order dedup, and every drop it performs there is counted in the same
    ``dropped_repeated_bugs`` total the cumulative mode produces."""
    outcomes: List[EntryOutcome] = []
    for entry in entries:
        if per_entry_dedup:
            explorer.seen_bug_keys.clear()
            explorer.seen_access_keys.clear()
        before = len(explorer.possible_bugs)
        accesses_before = len(explorer.shared_accesses)
        aware_before = explorer.store.aware_updates
        unaware_before = explorer.store.unaware_updates
        repeated_before = explorer.repeated_bugs
        started = time.perf_counter()
        explorer.explore(entry)
        outcomes.append(
            EntryOutcome(
                stats=EntryStats(
                    name=entry.name,
                    paths=explorer.paths,
                    steps=explorer.steps,
                    wall_seconds=time.perf_counter() - started,
                    budget_exhausted=explorer.budget_exhausted,
                    paths_pruned=explorer.paths_pruned,
                    blocks_pruned=explorer.blocks_pruned,
                ),
                bugs=explorer.possible_bugs[before:],
                accesses=explorer.shared_accesses[accesses_before:],
                aware_updates=explorer.store.aware_updates - aware_before,
                unaware_updates=explorer.store.unaware_updates - unaware_before,
                repeated_bugs=explorer.repeated_bugs - repeated_before,
            )
        )
    return outcomes


def shard_result(explorer: PathExplorer, outcomes: List[EntryOutcome]) -> ShardResult:
    """Package one explorer's cumulative counters with its entry outcomes."""
    return ShardResult(
        entries=outcomes,
        aware_updates=explorer.store.aware_updates,
        unaware_updates=explorer.store.unaware_updates,
        repeated_bugs=explorer.repeated_bugs,
    )


def _run_shard(
    program_bytes: Optional[bytes],
    config: AnalysisConfig,
    checker_spec: str,
    entry_names: List[str],
) -> ShardResult:
    """Worker-process body: rebuild the world (or inherit it, under fork)
    and explore one shard of entries."""
    if program_bytes is None:
        assert _FORK_STATE is not None, "fork-mode shard without inherited state"
        program, collector = _FORK_STATE
    else:
        program = pickle.loads(program_bytes)
        collector = InformationCollector(program)
    checkers = checkers_from_spec(checker_spec, collector)
    entries = []
    for name in entry_names:
        func = program.lookup(name)
        if func is None:  # pragma: no cover - names come from this program
            raise KeyError(f"entry function {name!r} not found in worker program")
        entries.append(func)
    relevance = None
    if config.prune:
        if config.cache_active():
            # Workers touch the incremental cache strictly read-only:
            # when every shard entry's relevance mask is cached (layer
            # b), the shim replaces the summary-index build below.  Any
            # miss falls through to the live pre-analysis.
            from ..incremental import load_cached_masks

            relevance = load_cached_masks(program, config, checker_spec, entries)
    if config.prune and relevance is None:
        # Each worker rebuilds the P1.5 pre-analysis from its own program
        # copy: summaries are a deterministic function of (program,
        # checkers, config), and block uids survive fork and pickling, so
        # every worker's dead-block sets agree with the sequential run's.
        from ..presolve import RelevancePreAnalysis, ScanContext

        relevance = RelevancePreAnalysis(
            program,
            checkers,
            ScanContext(
                may_return_negative=collector.may_return_negative,
                may_return_zero=collector.may_return_zero,
            ),
            resolve_function_pointers=config.resolve_function_pointers,
        )
    explorer = PathExplorer(
        program,
        config,
        checkers,
        indirect_resolver=(
            collector.indirect_targets if config.resolve_function_pointers else None
        ),
        relevance=relevance,
    )
    # Contract (PathExplorer docstring): possible_bugs/seen_bug_keys
    # accumulate across every entry an explorer sees, so each shard must
    # start from a fresh explorer or cross-shard merging double-drops.
    assert not explorer.possible_bugs and not explorer.seen_bug_keys, (
        "worker shard must use a fresh PathExplorer"
    )
    return shard_result(
        explorer,
        explore_entries(explorer, entries, per_entry_dedup=config.cache_active()),
    )


def run_parallel(
    program: Program,
    config: AnalysisConfig,
    checker_spec: str,
    entry_list: Sequence[Function],
    collector: Optional[InformationCollector] = None,
) -> Optional[Tuple[List[List[Function]], List[ShardResult]]]:
    """Shard ``entry_list`` across worker processes.

    Returns ``(shards, results)`` aligned index-for-index, or ``None``
    when parallel execution is unavailable (the caller then runs the
    in-process path; a one-line warning explains why — never a crash).
    """
    global _FORK_STATE
    workers = config.resolved_workers()
    use_fork = _fork_available()
    program_bytes = None
    if not use_fork:
        # Spawned workers must receive the program by value; an
        # unpicklable program cannot be analyzed in parallel.  (Fork-mode
        # failures — e.g. unpicklable *results* — surface from
        # future.result() below and take the same fallback.)
        try:
            program_bytes = pickle.dumps(program)
        except Exception as exc:
            log.warning(
                "parallel analysis disabled: program does not pickle (%s); "
                "falling back to sequential", exc,
            )
            return None
    nshards = min(workers, len(entry_list))
    # Round-robin keeps shards balanced when entry cost correlates with
    # position (generated corpora emit similar entries in runs).
    shards = [list(entry_list[i::nshards]) for i in range(nshards)]
    try:
        if use_fork:
            _FORK_STATE = (program, collector or InformationCollector(program))
        mp_context = multiprocessing.get_context("fork") if use_fork else None
        with ProcessPoolExecutor(max_workers=nshards, mp_context=mp_context) as pool:
            futures = [
                pool.submit(
                    _run_shard,
                    program_bytes,
                    config,
                    checker_spec,
                    [func.name for func in shard],
                )
                for shard in shards
            ]
            results = [future.result() for future in futures]
    except Exception as exc:
        log.warning("parallel analysis failed (%s); falling back to sequential", exc)
        return None
    finally:
        _FORK_STATE = None
    return shards, results


def merge_shard_results(
    entry_list: Sequence[Function],
    shards: Sequence[Sequence[Function]],
    results: Sequence[ShardResult],
    stats: AnalysisStats,
) -> Tuple[List[PossibleBug], List[SharedAccess]]:
    """Fold shard results into ``stats`` and one deduplicated bug list
    plus one deduplicated shared-access list, visiting entries in
    ``entry_list`` order regardless of which shard (or completion
    order) produced them.

    Dedup bookkeeping mirrors the sequential explorer exactly: a bug's
    (or access's) first sighting in global entry order is kept; every
    later sighting — whether in-shard (already counted by that shard's
    explorer) or cross-shard (dropped here) — is a repeat.  Cross-shard
    access dedup matters because each shard's explorer only saw its own
    entries: two shards can both record e.g. an access inside a helper
    inlined from entries in different shards.
    """
    outcome_by_entry = {}
    for shard, result in zip(shards, results):
        for entry, outcome in zip(shard, result.entries):
            outcome_by_entry[entry.name] = outcome

    merged: List[PossibleBug] = []
    merged_accesses: List[SharedAccess] = []
    seen_bug_keys = set()
    seen_access_keys = set()
    repeated = sum(result.repeated_bugs for result in results)
    for entry in entry_list:
        outcome = outcome_by_entry[entry.name]
        stats.per_entry.append(outcome.stats)
        stats.explored_paths += outcome.stats.paths
        stats.executed_steps += outcome.stats.steps
        if outcome.stats.budget_exhausted:
            stats.budget_exhausted_entries += 1
        stats.blocks_pruned += outcome.stats.blocks_pruned
        stats.paths_pruned += outcome.stats.paths_pruned
        for bug in outcome.bugs:
            key = bug.dedup_key
            if key in seen_bug_keys:
                repeated += 1
                continue
            seen_bug_keys.add(key)
            merged.append(bug)
        for access in outcome.accesses:
            access_key = access.dedup_key
            if access_key in seen_access_keys:
                continue
            seen_access_keys.add(access_key)
            merged_accesses.append(access)
    stats.typestates_aware = sum(result.aware_updates for result in results)
    stats.typestates_unaware = sum(result.unaware_updates for result in results)
    stats.dropped_repeated_bugs = repeated
    return merged, merged_accesses
