"""The PATA pipeline (Fig. 10): collector, analyzer, filter, facade."""

from .config import AnalysisConfig
from .collector import FunctionInfo, InformationCollector
from .analyzer import PathExplorer
from .filter import BugFilter, FilterResult, FilterStats
from .report import AnalysisResult, AnalysisStats, BugReport, EntryStats
from .parallel import ShardResult
from .pata import PATA

__all__ = [
    "AnalysisConfig", "FunctionInfo", "InformationCollector", "PathExplorer",
    "BugFilter", "FilterResult", "FilterStats",
    "AnalysisResult", "AnalysisStats", "BugReport", "EntryStats",
    "ShardResult", "PATA",
]
