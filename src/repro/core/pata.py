"""The PATA framework facade (Fig. 10): compile → collect → analyze →
filter → report.

Typical use::

    from repro import PATA, compile_program

    program = compile_program([("drv.c", source)])
    result = PATA().analyze(program)
    for report in result.reports:
        print(report.render())
"""

from __future__ import annotations

import logging
import time
from typing import Iterable, List, Optional, Tuple

from ..ir import Function, Program
from ..lang import compile_program
from ..typestate import Checker, checkers_from_spec, configure_checkers
from .analyzer import PathExplorer
from .collector import InformationCollector
from .config import AnalysisConfig
from .filter import BugFilter
from .parallel import explore_entries, merge_outcomes, run_parallel
from .report import AnalysisResult, AnalysisStats, EntryStats

log = logging.getLogger("repro.parallel")


class PATA:
    """Path-sensitive and Alias-aware Typestate Analysis.

    ``checkers`` defaults to the paper's three primary checkers (NPD, UVA,
    ML, §5.1); pass ``PATA.with_all_checkers()`` for the §5.5 set, a
    ``checker_spec`` string (any form accepted by
    :func:`repro.typestate.checkers.checkers_from_spec`, e.g.
    ``"npd,ml,taint"``), or any custom :class:`~repro.typestate.Checker`
    list.  Spec strings are preferred for parallel runs — workers rebuild
    checkers from the spec, while live objects force sequential analysis.
    """

    def __init__(
        self,
        checkers: Optional[List[Checker]] = None,
        config: Optional[AnalysisConfig] = None,
        checker_spec: Optional[str] = None,
        store=None,
    ):
        if checkers is not None and checker_spec is not None:
            raise ValueError("pass either live checkers or a checker_spec, not both")
        self.config = config or AnalysisConfig()
        self._checkers = checkers
        if checker_spec is not None:
            # Validate eagerly so a bad spec fails at construction, not
            # deep inside a worker process.
            checkers_from_spec(checker_spec)
        self._spec = checker_spec
        #: a pre-opened cache store (e.g. a resident session's in-memory
        #: store) overriding ``config.cache_dir`` resolution; ``None``
        #: for the normal disk-backed (or cache-off) path
        self._store = store

    @classmethod
    def with_all_checkers(cls, config: Optional[AnalysisConfig] = None) -> "PATA":
        """PATA with the six shipped checkers; the collector wires the
        may-return-negative/zero facts in at analysis time."""
        instance = cls(checkers=None, config=config)
        instance._use_all = True
        return instance

    # -- pipeline -----------------------------------------------------------------

    def analyze(self, program: Program, entries: Optional[List[Function]] = None) -> AnalysisResult:
        started = time.monotonic()
        if self.config.optimize_ir:
            from ..incremental.coords import renumber_program
            from ..ir import optimize_program

            optimize_program(program)
            # Compile-time fingerprints print the unoptimized IR; after
            # rewriting, they would poison every cache key.  Rewriting
            # also mints fresh uids from the process counters, so
            # renumber to keep uid-derived report text deterministic.
            program.__dict__.pop("_pata_fingerprints", None)
            renumber_program(program)
        # Incremental cache (opt-in): fingerprint the program and open the
        # summary store before P1, so cached collector facts can seed it.
        # `incr` stays None when caching is off or cannot apply (live
        # checker objects, wall-clock budgets) — every later cache branch
        # collapses to today's behaviour then.
        incr = None
        if self.config.cache_active() or self._store is not None:
            from ..incremental import open_incremental

            incr = open_incremental(
                program, self.config, self._checker_spec(), store=self._store
            )
        phase_started = time.monotonic()
        collector = InformationCollector(
            program, cached_facts=incr.cached_facts() if incr is not None else None
        )
        stats = AnalysisStats(
            analyzed_files=len(program.modules),
            analyzed_lines=program.total_source_lines(),
        )
        entry_list = entries if entries is not None else collector.entry_functions()
        stats.entry_functions = len(entry_list)
        stats.time_collect_seconds = time.monotonic() - phase_started

        # P1.5: checker-relevance pre-analysis.  Entry pruning happens
        # here, *before* dispatch, so skipped entries never reach a
        # worker; block pruning happens inside each explorer through the
        # `relevance` handle (workers inherit the parent's via fork, or
        # receive its precomputed dead-block masks under spawn — see
        # parallel.py).  With a warm cache the partition comes from
        # cached relevance masks and per-entry outcomes instead, and the
        # pre-analysis is only built when some dirty entry lacks a
        # cached mask.
        phase_started = time.monotonic()
        relevance = None
        analyzed_list = list(entry_list)
        skipped_names: List[str] = []
        cached_outcomes = {}
        if incr is not None:
            plan = incr.plan(entry_list)
            cached_outcomes = plan.cached
            skipped_names = list(plan.skipped)
            analyzed_list = plan.dirty
            if self.config.prune and plan.dirty and not plan.needs_relevance:
                from ..incremental import CachedRelevance

                relevance = CachedRelevance(plan.masks, plan.armed)
        if self.config.prune and relevance is None and (
            incr is None or (plan.needs_relevance and analyzed_list)
        ):
            from ..presolve import RelevancePreAnalysis, ScanContext

            relevance = RelevancePreAnalysis(
                program,
                self._resolve_checkers(collector),
                ScanContext(
                    may_return_negative=collector.may_return_negative,
                    may_return_zero=collector.may_return_zero,
                ),
                resolve_function_pointers=self.config.resolve_function_pointers,
                sharpen_shared=self.config.alias_tier_level() >= 1,
                sharpen_taint=self.config.alias_tier_level() >= 2,
            )
            analyzed_list, live_skipped = relevance.partition_entries(analyzed_list)
            skipped_names.extend(live_skipped)
        stats.entries_skipped = len(skipped_names)
        stats.time_presolve_seconds = time.monotonic() - phase_started

        # P1.7: tiered may-alias pre-pass.  One whole-program Steensgaard
        # unification produces the over-approximate may-alias partition
        # and its proven singletons; the explorer, the trace translators,
        # and (through `sharpen_shared` above) the relevance masks all
        # consume it, each provably report-preserving — `--alias-tier
        # off` reproduces today's behaviour byte for byte.  The partition
        # is cached per module closure, so warm runs skip the pass.
        partition = None
        if self.config.alias_tier_level() >= 1 and self.config.alias_aware:
            phase_started = time.monotonic()
            if incr is not None:
                partition = incr.cached_partition()
            if partition is None:
                from ..pointsto.steensgaard import build_partition

                partition = build_partition(program)
                if incr is not None:
                    incr.stage_partition(partition)
            stats.singletons_proven = len(partition.singletons)
            stats.alias_cells = partition.cell_count
            stats.time_unify_seconds = time.monotonic() - phase_started

        # P1.8: flow-sensitive must-alias facts.  On top of the P1.7
        # partition (whose cells bucket the value-flow graph's store→load
        # matching), the flow tier derives must-point-to singletons and
        # strong-update-killed definitions, folded into one picklable
        # MustAliasFacts object.  The explorer resolves a per-entry skip
        # set from it (closure occurrences minus disqualifications — a
        # strict superset of the whole-program singletons), the trace
        # translators reuse that set per bug entry, and the presolve's
        # taint sharpening above rides the same tier gate.  Cached per
        # module closure like the partition.
        flow_facts = None
        if partition is not None and self.config.alias_tier_level() >= 2:
            phase_started = time.monotonic()
            if incr is not None:
                flow_facts = incr.cached_flow_facts()
            if flow_facts is None:
                from ..pointsto.flow_tier import compute_flow_facts

                flow_facts = compute_flow_facts(
                    program, partition, self.config.resolve_function_pointers
                )
                if incr is not None:
                    incr.stage_flow_facts(flow_facts)
            stats.must_singletons = flow_facts.must_singletons
            stats.strong_updates = flow_facts.strong_updates
            stats.time_flow_seconds = time.monotonic() - phase_started

        # P2: explore every entry — streamed in size-sorted batches
        # through persistent worker processes when configured (the
        # paper's thread-per-entry, §4), in-process otherwise.  Both
        # paths produce per-entry outcomes merged by the same
        # deterministic entry-order fold, so reports and stats are
        # identical either way (timings aside).
        phase_started = time.monotonic()
        outcome_by_name = None
        if self.config.resolved_workers() > 1 and len(analyzed_list) > 1:
            spec = self._checker_spec()
            if spec is None:
                log.warning(
                    "parallel analysis disabled: custom checker objects cannot "
                    "be rebuilt in workers; falling back to sequential"
                )
            else:
                run = run_parallel(
                    program, self.config, spec, analyzed_list, collector,
                    relevance=relevance, partition=partition,
                    flow_facts=flow_facts,
                )
                if run is not None:
                    outcome_by_name = run.outcomes
                    stats.workers_used = run.workers
                    stats.batches_dispatched = run.batches
        if outcome_by_name is None:
            checkers = self._resolve_checkers(collector)
            explorer = PathExplorer(
                program,
                self.config,
                checkers,
                indirect_resolver=(
                    collector.indirect_targets if self.config.resolve_function_pointers else None
                ),
                relevance=relevance,
                partition=partition,
                flow_facts=flow_facts,
            )
            outcomes = explore_entries(
                explorer, analyzed_list, per_entry_dedup=incr is not None
            )
            outcome_by_name = {
                func.name: outcome for func, outcome in zip(analyzed_list, outcomes)
            }
        stats.time_explore_seconds = time.monotonic() - phase_started
        if incr is not None:
            stats.entries_reanalyzed = len(analyzed_list)
        merge_map = outcome_by_name
        merge_list = analyzed_list
        if cached_outcomes:
            # Splice the cache hits straight into the outcome map; the
            # deterministic entry-order merge below then treats them
            # exactly like freshly explored outcomes, so mixed
            # cached/fresh runs dedup — and race-match — identically to
            # a cold run.
            merge_map = {**outcome_by_name, **cached_outcomes}
            explored = {func.name for func in analyzed_list}
            merge_list = [
                func for func in entry_list
                if func.name in explored or func.name in cached_outcomes
            ]
            stats.entries_cached = len(merge_list) - len(analyzed_list)
        possible_bugs, merged_records = merge_outcomes(merge_list, merge_map, stats)
        # The access channel carries two record families: SharedAccess
        # (P2.5 race input) and TaintFlow (P2.6 cross-module taint
        # input).  Partition once; each matcher sees only its own.
        shared_accesses = merged_records
        taint_flows = []
        if merged_records:
            from ..xtaint import TaintFlow

            taint_flows = [r for r in merged_records if isinstance(r, TaintFlow)]
            if taint_flows:
                shared_accesses = [
                    r for r in merged_records if not isinstance(r, TaintFlow)
                ]
        # P2.5: cross-entry race matching.  Accesses only exist when a
        # race checker is registered; the matcher pairs same-key accesses
        # from different entries with disjoint locksets (≥1 write) into
        # stage-1 candidates carrying *both* path snapshots, which the
        # P3 validator conjoins (translate_trace_pair).
        phase_started = time.monotonic()
        if shared_accesses:
            from ..races import match_races

            race_bugs = match_races(shared_accesses)
            stats.shared_accesses = len(shared_accesses)
            stats.race_pairs_matched = len(race_bugs)
            possible_bugs.extend(race_bugs)
        stats.time_match_seconds = time.monotonic() - phase_started
        # P2.6: cross-module taint matching.  Flows only exist when the
        # xtaint checker is registered.  Per-module interface summaries
        # condense the merged flows (replayed from their cache layer on
        # warm runs — keyed on the module closure, so any edit misses);
        # the fixpoint matcher stitches export-in-module-A to
        # sink-in-module-B, and every pair re-discharges in P3 with both
        # path conditions conjoined.
        phase_started = time.monotonic()
        if taint_flows:
            from ..xtaint import all_flows, build_summaries, match_cross_module

            summaries = incr.cached_xtaint_summaries() if incr is not None else None
            if summaries is not None:
                stats.summaries_cached = len(summaries)
                taint_flows = all_flows(summaries)
            else:
                summaries = build_summaries(taint_flows, partition=partition)
                if incr is not None:
                    incr.stage_xtaint_summaries(summaries)
            xtaint_bugs = match_cross_module(summaries)
            stats.taint_flows_recorded = len(taint_flows)
            stats.xtaint_pairs_matched = len(xtaint_bugs)
            possible_bugs.extend(xtaint_bugs)
        stats.time_xmatch_seconds = time.monotonic() - phase_started
        if skipped_names:
            # Re-interleave the skipped entries' zero rows so per_entry
            # stays in original entry-list order with or without pruning.
            by_name = {row.name: row for row in stats.per_entry}
            for name in skipped_names:
                by_name[name] = EntryStats(name=name, skipped=True)
            stats.per_entry = [by_name[func.name] for func in entry_list]

        if incr is not None:
            # Parent-only, single-writer commit of all cache layers (a
            # no-op under --cache ro).  Staged before P3 so the cached
            # outcomes are the same objects the filter validates.  The
            # map holds both executors' products: worker batches and the
            # in-process path emit the same per-entry-pure EntryOutcome
            # objects, so their coordinates stage identically (cache
            # hits are skipped inside commit via ``stats.cached``).
            incr.commit(collector, relevance, analyzed_list, merge_map, skipped_names)
            stats.cache_hits = incr.store.hits
            stats.cache_misses = incr.store.misses
            stats.cache_corrupt = incr.store.corrupt

        phase_started = time.monotonic()
        bug_filter = BugFilter(
            self.config.validate_paths,
            self.config.solver_max_search_nodes,
            alias_aware=self.config.alias_aware,
            partition=partition,
            flow_facts=flow_facts,
        )
        filtered = bug_filter.run(possible_bugs)
        stats.dropped_false_bugs = filtered.stats.dropped_false
        stats.validated_paths = filtered.stats.validated
        stats.smt_constraints_aware = filtered.stats.constraints_aware
        stats.smt_constraints_unaware = filtered.stats.constraints_unaware
        stats.time_filter_seconds = time.monotonic() - phase_started
        stats.time_seconds = time.monotonic() - started
        return AnalysisResult(reports=filtered.reports, stats=stats)

    def analyze_sources(self, sources: Iterable[Tuple[str, str]]) -> AnalysisResult:
        """Compile ``(filename, mini-C source)`` pairs and analyze them."""
        return self.analyze(compile_program(sources))

    def _checker_spec(self) -> Optional[str]:
        """The spec string workers rebuild this PATA's checker set from,
        or ``None`` when the caller supplied live checker objects (those
        are not shipped across the process boundary; see
        :func:`repro.typestate.checkers.checkers_from_spec`)."""
        if self._checkers is not None:
            return None
        if self._spec is not None:
            return self._spec
        return "all" if getattr(self, "_use_all", False) else "default"

    def _resolve_checkers(self, collector: InformationCollector) -> List[Checker]:
        if self._checkers is not None:
            return self._checkers
        return configure_checkers(
            checkers_from_spec(self._checker_spec(), collector), self.config
        )
