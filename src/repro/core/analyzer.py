"""The PATA code analyzer — phase P2 (Fig. 10): simultaneous path-based
alias analysis and alias-aware typestate tracking.

Exploration follows Fig. 6: a depth-first walk over the CFG starting at
every entry function, inlining direct calls (parameter passing = MOVEs),
unrolling each loop and recursion once, and invoking TypestateTrack after
every alias-graph update.  Backtracking rewinds the shared undo trail, so
each path observes its own alias graph and checker state (equivalent to
the paper's graph copies, see :mod:`repro.alias.trail`).

Path-explosion mitigation (§4 P2, "combines the information of its code
paths"): when a callee returns, exit paths whose externally visible
effects (touched typestates, rebound variables, returned value) are
identical to an already-continued exit are merged — the caller's
continuation runs once per distinct exit state, bounded by
``max_callee_exits_per_call``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..alias import AliasGraph, Trail, apply_instruction
from ..errors import BudgetExceeded
from ..ir import (
    AddrOf,
    Alloc,
    BasicBlock,
    BinOp,
    Branch,
    Call,
    CallIndirect,
    Const,
    DeclLocal,
    Free,
    Function,
    Gep,
    Instruction,
    IntType,
    Jump,
    Load,
    LockOp,
    Malloc,
    MemSet,
    Move,
    PointerType,
    Program,
    Ret,
    Store,
    UnOp,
    Unreachable,
    Value,
    Var,
    is_null_const,
)
from ..races.shared import SharedAccess
from ..smt.terms import NEGATED_REL, SWAPPED_REL
from ..typestate import (
    AllocEvent,
    AssignConstEvent,
    AssignNullEvent,
    BranchCmpEvent,
    BranchNullEvent,
    CallReturnEvent,
    Checker,
    DeclLocalEvent,
    DerefEvent,
    DivEvent,
    EscapeEvent,
    ExternalCallEvent,
    FreeEvent,
    IndexEvent,
    LoadEvent,
    LockEvent,
    MemInitEvent,
    PossibleBug,
    ReturnEvent,
    StateStore,
    StoreEvent,
    TrackerContext,
    TransferEvent,
    TypestateManager,
    UseVarEvent,
)
from .config import AnalysisConfig

_CMP_OPS = {"eq", "ne", "lt", "le", "gt", "ge"}


class _Frame:
    """One (possibly inlined) function activation."""

    __slots__ = (
        "func", "frame_id", "is_entry", "cont", "block_visits",
        "exit_digests", "store_mark", "alias_mark",
    )

    def __init__(self, func: Function, frame_id: int, is_entry: bool, cont, store_mark: int, alias_mark: int):
        self.func = func
        self.frame_id = frame_id
        self.is_entry = is_entry
        #: (block, inst_index, caller_frame, call_inst) to resume on return
        self.cont = cont
        self.block_visits: Dict[int, int] = {}
        self.exit_digests: Set = set()
        self.store_mark = store_mark
        self.alias_mark = alias_mark


class PathExplorer:
    """Explores all paths from one entry function, producing possible bugs.

    One explorer instance may be reused across entry functions of a
    program; per-entry counters reset in :meth:`explore`.

    **Cross-entry accumulation contract:** ``possible_bugs`` and
    ``seen_bug_keys`` are *deliberately* shared across every entry
    explored through one instance — a bug sighted from a second entry is
    a repeat (§4 P3), counted in ``repeated_bugs`` rather than reported
    twice.  Everything else is per-entry and is reset or cleared by
    :meth:`explore`.  Consequently a parallel driver must give each
    batch a *fresh* explorer in per-entry-dedup mode and re-apply the
    dedup in entry order itself (see :mod:`repro.core.parallel`); reusing
    one accumulating explorer for two batches would silently drop bugs
    that the sequential run reports.
    """

    def __init__(
        self,
        program: Program,
        config: Optional[AnalysisConfig] = None,
        checkers: Optional[List[Checker]] = None,
        instruction_observer: Optional[Callable] = None,
        path_end_observer: Optional[Callable] = None,
        indirect_resolver: Optional[Callable] = None,
        relevance=None,
        partition=None,
        flow_facts=None,
        # Back-compat conveniences used by PathAliasAnalysis:
        max_paths: Optional[int] = None,
        max_call_depth: Optional[int] = None,
        max_steps_per_path: Optional[int] = None,
    ):
        self.program = program
        self.config = config or AnalysisConfig()
        if max_paths is not None:
            self.config.max_paths_per_entry = max_paths
        if max_call_depth is not None:
            self.config.max_call_depth = max_call_depth
        if max_steps_per_path is not None:
            self.config.max_steps_per_entry = max_steps_per_path
        self.manager = TypestateManager(checkers or [])
        self.instruction_observer = instruction_observer
        self.path_end_observer = path_end_observer
        #: (struct name | None, field) -> candidate function names; set to
        #: enable the §7 function-pointer extension
        self.indirect_resolver = indirect_resolver
        #: P1.5 :class:`~repro.presolve.prune.RelevancePreAnalysis`; when
        #: set, paths stop on entering a dead block of the entry CFG
        self.relevance = relevance
        #: P1.7 :class:`~repro.pointsto.steensgaard.MayAliasPartition`;
        #: when set, per-path graph maintenance skips proven singletons
        self.partition = partition
        #: P1.8 :class:`~repro.pointsto.flow_tier.MustAliasFacts`; when
        #: set, the skip set is re-resolved *per entry* from its closure
        #: (a strict superset of the whole-program singletons)
        self.flow_facts = flow_facts
        self._dead_blocks: frozenset = frozenset()

        skip_names = (
            partition.singletons
            if partition is not None and self.config.alias_aware
            else None
        )
        self.trail = Trail()
        self.graph: Optional[AliasGraph] = (
            AliasGraph(self.trail, skip_names=skip_names)
            if self.config.alias_aware else None
        )
        self.store = StateStore(self.trail)
        self.ctx = TrackerContext(
            graph=self.graph,
            store=self.store,
            alias_aware=self.config.alias_aware,
            report_fn=self._report,
            base_of_fn=lambda name: self.addr_defs.get(name),
            known_function_fn=lambda name: self.program.lookup(name) is not None,
        )

        self.trace: List[Tuple] = []
        self.value_defs: Dict[str, BinOp] = {}
        self.addr_defs: Dict[str, Tuple[Var, str]] = {}
        #: load destinations -> the pointer loaded through (for resolving
        #: which struct field a function pointer came from)
        self.load_srcs: Dict[str, str] = {}
        self.possible_bugs: List[PossibleBug] = []
        self.seen_bug_keys: Set[Tuple] = set()
        self.repeated_bugs = 0
        #: shared-state accesses recorded by the race checker (P2.5
        #: input).  Same accumulation contract as ``possible_bugs``:
        #: shared across every entry this explorer walks — cross-entry
        #: matching *needs* both sides — and deduplicated on the fly.
        self.shared_accesses: List[SharedAccess] = []
        self.seen_access_keys: Set[Tuple] = set()
        self.repeated_accesses = 0
        self.ctx.record_access_fn = self._record_access
        self.ctx.record_flow_fn = self._record_flow
        self.paths = 0
        self.steps = 0
        self.budget_exhausted = False
        self.paths_pruned = 0
        self.blocks_pruned = 0
        self._frame_ids = 0
        self._call_stack: List[str] = []
        self._deadline: Optional[float] = None

    # -- reporting -----------------------------------------------------------------

    def _report(self, bug: PossibleBug) -> None:
        key = bug.dedup_key
        if key in self.seen_bug_keys:
            self.repeated_bugs += 1
            return
        self.seen_bug_keys.add(key)
        bug.trace = tuple(self.trace)
        self.possible_bugs.append(bug)

    def _record_access(self, key, is_write: bool, inst: Instruction, lockset) -> None:
        """Record one shared-state access on the current path (the
        :meth:`~repro.typestate.manager.TrackerContext.record_access`
        hook).  Dedup *before* snapshotting the trace: path re-merges
        and loop re-visits repeat the same (entry, key, inst, lockset)
        access, and the first path's snapshot stands in for all."""
        access = SharedAccess(
            key=key,
            is_write=is_write,
            inst=inst,
            entry=self.ctx.entry_function,
            lockset=lockset,
        )
        dedup = access.dedup_key
        if dedup in self.seen_access_keys:
            self.repeated_accesses += 1
            return
        self.seen_access_keys.add(dedup)
        access.trace = tuple(self.trace)
        self.shared_accesses.append(access)

    def _record_flow(self, flow) -> None:
        """Record one cross-module taint half-flow (the
        :meth:`~repro.typestate.manager.TrackerContext.record_flow`
        hook, P2.6 input).  Flows ride the ``shared_accesses`` channel —
        same list, same dedup-before-snapshot contract, same worker and
        cache plumbing; their ``dedup_key`` is "xflow"-namespaced so it
        can never collide with a :class:`SharedAccess` key."""
        flow.entry = self.ctx.entry_function
        dedup = flow.dedup_key
        if dedup in self.seen_access_keys:
            self.repeated_accesses += 1
            return
        self.seen_access_keys.add(dedup)
        flow.trace = tuple(self.trace)
        self.shared_accesses.append(flow)

    def _dispatch(self, event) -> None:
        self.manager.dispatch(event, self.ctx)

    # -- entry point ----------------------------------------------------------------

    def explore(self, entry: Function) -> None:
        """Explore every path of ``entry`` (AnalyzeCode + HandleFUNC)."""
        self.paths = 0
        self.steps = 0
        # Per-entry flag: without this reset, one exhausted entry would
        # make every later entry of the same explorer look exhausted too.
        self.budget_exhausted = False
        self.paths_pruned = 0
        if self.relevance is not None:
            self._dead_blocks = self.relevance.dead_blocks(entry)
        else:
            self._dead_blocks = frozenset()
        self.blocks_pruned = len(self._dead_blocks)
        # P1.7 per-entry checker arming: dispatch only checkers whose
        # trigger *and* sink kinds occur in this entry's region (the
        # per-checker refinement of P1.5's entry pruning — an unarmed
        # checker provably cannot report here, and its cross-entry
        # recordings fire only at events the region does not contain).
        # `--alias-tier off` restores today's dispatch-everything.
        armed = None
        if self.config.alias_tier != "off" and self.relevance is not None:
            armed_of = getattr(self.relevance, "armed_names", None)
            if armed_of is not None:
                armed = armed_of(entry)
        self.manager.set_active(armed)
        # P1.8 per-entry skip set: between entries the graph is empty
        # (the trail unwinds it fully), so reassigning skip_names here is
        # safe — and sound, because the set is derived from exactly the
        # instructions this entry's closure can execute.
        if self.flow_facts is not None and self.graph is not None:
            self.graph.skip_names = self.flow_facts.skip_names_for_entry(entry.name)
        self.ctx.entry_function = entry.name
        if self.config.entry_time_limit is not None:
            self._deadline = time.monotonic() + self.config.entry_time_limit
        mark = self.trail.mark()
        tlen = len(self.trace)
        # After the mark: path-start state (e.g. border-source taint on
        # entry parameters) is trailed and unwinds with the entry, so it
        # can never leak into the next entry this explorer walks.
        for checker in self.manager.active:
            checker.on_path_start(self.ctx)
        frame = self._new_frame(entry, is_entry=True, cont=None)
        self.ctx.frame_id = frame.frame_id
        self._call_stack.append(entry.name)
        self.trace.append(("enter", entry.name, frame.frame_id))
        try:
            self._enter_block(entry.entry, frame)
        except BudgetExceeded:
            self.budget_exhausted = True
        finally:
            self._call_stack.pop()
            self.trail.undo_to(mark)
            del self.trace[tlen:]
            self.value_defs.clear()
            self.addr_defs.clear()
            # load_srcs is deliberately NOT trail-journaled within a path:
            # load provenance is a flow-insensitive per-entry fact ("this
            # temporary was loaded through that pointer somewhere on the
            # walk"), and journaling it per branch would only make
            # _resolve_indirect forget targets on merge-heavy paths.  It
            # must still be cleared *per entry*: stale provenance from a
            # previous entry could resolve a function pointer through
            # another entry's loads.
            self.load_srcs.clear()
            self._deadline = None

    def _new_frame(self, func: Function, is_entry: bool, cont) -> _Frame:
        self._frame_ids += 1
        return _Frame(
            func,
            self._frame_ids,
            is_entry,
            cont,
            store_mark=len(self.store.journal),
            alias_mark=len(self.graph.journal) if self.graph is not None else 0,
        )

    # -- block / instruction walk -------------------------------------------------------

    def _enter_block(self, block: BasicBlock, frame: _Frame) -> None:
        if frame.is_entry and block.uid in self._dead_blocks:
            # P1.5 block pruning: no armed checker's sink is reachable
            # from here, so no report can fire on any suffix — the path
            # ends, report-identically to exploring the dead region.
            self.paths_pruned += 1
            return
        visits = frame.block_visits.get(block.uid, 0)
        if visits >= self.config.max_block_visits:
            # Loop bound reached: the path dies here (paper's unroll-once).
            return
        frame.block_visits[block.uid] = visits + 1
        try:
            self._run_insts(block, 0, frame)
        finally:
            frame.block_visits[block.uid] = visits

    def _run_insts(self, block: BasicBlock, index: int, frame: _Frame) -> None:
        insts = block.instructions
        i = index
        while i < len(insts):
            inst = insts[i]
            self._count_step()
            if isinstance(inst, Call):
                callee = self.program.lookup(inst.callee)
                if callee is not None and self._can_inline(callee):
                    self._inline_call(inst, callee, block, i, frame)
                    return  # the continuation ran inside the callee walk
                self._exec_external_call(inst)
            elif isinstance(inst, CallIndirect) and self.indirect_resolver is not None:
                targets = self._resolve_indirect(inst)
                if targets:
                    # Fork per candidate target, like a branch (§7 ext.).
                    self.trace.append(("inst", inst))
                    for target in targets[: self.config.max_indirect_targets]:
                        self._inline_call(inst, target, block, i, frame)
                    return
                self._exec_simple(inst, frame)
            else:
                self._exec_simple(inst, frame)
            if self.instruction_observer is not None:
                self.instruction_observer(inst, self.graph)
            i += 1
        self._run_terminator(block, frame)

    def _count_step(self) -> None:
        self.steps += 1
        if self.steps > self.config.max_steps_per_entry:
            raise BudgetExceeded("step budget")
        if self._deadline is not None and self.steps % 2048 == 0 and time.monotonic() > self._deadline:
            raise BudgetExceeded("time budget")

    def _can_inline(self, callee: Function) -> bool:
        if callee.is_declaration:
            return False
        if len(self._call_stack) >= self.config.max_call_depth:
            return False
        occurrences = self._call_stack.count(callee.name)
        return occurrences <= self.config.max_recursion_occurrences

    def _resolve_indirect(self, inst: CallIndirect) -> List[Function]:
        """Targets of a function-pointer call, resolved through interface
        registrations by (struct type, field) — the §7 extension."""
        ptr_name = self.load_srcs.get(inst.fn.name)
        if ptr_name is None:
            return []
        base_field = self.addr_defs.get(ptr_name)
        if base_field is None:
            return []
        base, field = base_field
        struct_name = None
        base_ty = base.type
        if isinstance(base_ty, PointerType) and base_ty.pointee is not None and base_ty.pointee.is_struct():
            struct_name = base_ty.pointee.name
        targets = []
        for name in self.indirect_resolver(struct_name, field):
            func = self.program.lookup(name)
            if func is not None and self._can_inline(func):
                targets.append(func)
        return targets

    # -- calls -------------------------------------------------------------------------

    def _inline_call(self, inst: Call, callee: Function, block: BasicBlock, index: int, frame: _Frame) -> None:
        mark = self.trail.mark()
        tlen = len(self.trace)
        new_frame = self._new_frame(callee, is_entry=False, cont=(block, index, frame, inst))
        self.trace.append(("enter", callee.name, new_frame.frame_id))
        for position, param in enumerate(callee.params):
            arg = inst.args[position] if position < len(inst.args) else Const(0)
            self._move_like(param, arg, inst)
            self.trace.append(("param", param, arg))
        self._call_stack.append(callee.name)
        old_frame_id = self.ctx.frame_id
        self.ctx.frame_id = new_frame.frame_id
        try:
            self._enter_block(callee.entry, new_frame)
        finally:
            self.ctx.frame_id = old_frame_id
            self._call_stack.pop()
            self.trail.undo_to(mark)
            del self.trace[tlen:]

    def _move_like(self, dst: Var, src: Value, inst: Instruction) -> None:
        """The MOVE semantics shared by assignments, parameter passing and
        return values (HandleCALL lines 12-21)."""
        if self.graph is not None:
            if isinstance(src, Var):
                self.graph.handle_move(dst, src)
            else:
                self.graph.detach(dst)
        if isinstance(src, Var):
            self.manager.sync_on_move(self.ctx, dst, src)
            if self.ctx.alias_aware:
                # Table 5 accounting: a traditional per-variable tracker
                # would copy every state the source holds to the
                # destination here (the "sync" transitions of Fig. 8a);
                # alias-aware tracking shares the state instead.  Scoped
                # to the active checkers: under per-entry arming the
                # skipped checkers hold no readable state, so their
                # would-be syncs are not work this run avoids.
                names = self.manager.active_namespaces
                if names:
                    key = self.ctx.key(src)
                    store_get = self.store.get
                    for name in names:
                        if store_get(name, key) is not None:
                            self.store.unaware_updates += 1
        else:
            self._na_reset(dst)
            if is_null_const(src):
                if self.manager.wants(AssignNullEvent):
                    self._dispatch(AssignNullEvent(inst, dst))
            elif isinstance(src, Const):
                if self.manager.wants(AssignConstEvent):
                    self._dispatch(AssignConstEvent(inst, dst, value=src.value))

    def _na_reset(self, var: Var) -> None:
        """NA mode: clear stale per-name states on redefinition (alias-aware
        mode gets this for free from the strong node update)."""
        if self.ctx.alias_aware:
            return
        for name in self.manager.checker_names:
            if self.store.get(name, var.name) is not None:
                self.store.set(name, var.name, None)

    def _exec_external_call(self, inst: Call) -> None:
        """A call we do not inline: unknown externals, exceeded depth, or a
        blocked recursive re-entry.  Effects are havocked conservatively."""
        self.trace.append(("inst", inst))
        wants = self.manager.wants
        if wants(ExternalCallEvent):
            self._dispatch(ExternalCallEvent(inst, inst.callee, tuple(inst.args)))
        for arg in inst.args:
            if isinstance(arg, Var):
                if isinstance(arg.type, PointerType):
                    if wants(EscapeEvent):
                        self._dispatch(EscapeEvent(inst, arg, "passed to external"))
                elif wants(UseVarEvent):
                    self._dispatch(UseVarEvent(inst, arg))
        if inst.dst is not None:
            if self.graph is not None:
                self.graph.detach(inst.dst)
            self._na_reset(inst.dst)
            if wants(CallReturnEvent):
                self._dispatch(CallReturnEvent(inst, inst.dst, inst.callee))

    # -- plain instructions -------------------------------------------------------------

    def _exec_simple(self, inst: Instruction, frame: _Frame) -> None:
        self.trace.append(("inst", inst))
        handler = _EXEC_DISPATCH.get(inst.__class__)
        if handler is not None:
            handler(self, inst)
        else:
            self._exec_fallback(inst)

    def _exec_fallback(self, inst: Instruction) -> None:
        """Instruction subclasses outside the exact-type table: resolve by
        the original isinstance walk; a truly unknown instruction still
        gets its alias-graph maintenance (and no events), as before."""
        for cls, handler in _EXEC_FALLBACK_ORDER:
            if isinstance(inst, cls):
                handler(self, inst)
                return
        if self.graph is not None:
            apply_instruction(self.graph, inst)

    def _exec_move(self, inst: Move) -> None:
        src = inst.src
        self._move_like(inst.dst, src, inst)
        if isinstance(src, Var):
            wants = self.manager.wants
            if wants(UseVarEvent):
                self._dispatch(UseVarEvent(inst, src))
            if inst.dst.is_global and wants(EscapeEvent):
                self._dispatch(EscapeEvent(inst, src, "stored to global"))

    def _exec_load(self, inst: Load) -> None:
        if self.graph is not None:
            apply_instruction(self.graph, inst)
        self._na_reset(inst.dst)
        self.load_srcs[inst.dst.name] = inst.ptr.name
        wants = self.manager.wants
        if wants(DerefEvent):
            self._dispatch(DerefEvent(inst, inst.ptr))
        if wants(LoadEvent):
            self._dispatch(LoadEvent(inst, inst.ptr, inst.dst))

    def _exec_store(self, inst: Store) -> None:
        result_node = apply_instruction(self.graph, inst) if self.graph is not None else None
        wants = self.manager.wants
        if wants(DerefEvent):
            self._dispatch(DerefEvent(inst, inst.ptr))
        src = inst.src
        if isinstance(src, Var):
            if wants(UseVarEvent):
                self._dispatch(UseVarEvent(inst, src))
            if isinstance(src.type, PointerType) and wants(EscapeEvent):
                self._dispatch(EscapeEvent(inst, src, "stored to memory"))
        elif is_null_const(src) and wants(AssignNullEvent):
            self._dispatch(
                AssignNullEvent(
                    inst,
                    _stored_pseudo_var(inst),
                    node_key=result_node.uid if result_node is not None else None,
                )
            )
        if wants(StoreEvent):
            self._dispatch(StoreEvent(inst, inst.ptr, src))

    def _exec_gep(self, inst: Gep) -> None:
        if self.graph is not None:
            apply_instruction(self.graph, inst)
        self._na_reset(inst.dst)
        self.addr_defs[inst.dst.name] = (inst.base, inst.field)
        wants = self.manager.wants
        if wants(DerefEvent):
            self._dispatch(DerefEvent(inst, inst.base))
        if inst.index is not None and wants(IndexEvent):
            self._dispatch(IndexEvent(inst, inst.index))

    def _exec_addr_of(self, inst: AddrOf) -> None:
        if self.graph is not None:
            apply_instruction(self.graph, inst)
        self._na_reset(inst.dst)

    def _exec_binop(self, inst: BinOp) -> None:
        if self.graph is not None:
            apply_instruction(self.graph, inst)
        self._na_reset(inst.dst)
        self.value_defs[inst.dst.name] = inst
        wants = self.manager.wants
        if wants(UseVarEvent):
            for operand in (inst.lhs, inst.rhs):
                if isinstance(operand, Var):
                    self._dispatch(UseVarEvent(inst, operand))
        if inst.op in ("div", "mod") and wants(DivEvent):
            self._dispatch(DivEvent(inst, inst.rhs))
        if wants(AssignConstEvent):
            value = _fold_binop(inst)
            self._dispatch(AssignConstEvent(inst, inst.dst, value=value, op=inst.op))

    def _exec_unop(self, inst: UnOp) -> None:
        if self.graph is not None:
            apply_instruction(self.graph, inst)
        self._na_reset(inst.dst)
        wants = self.manager.wants
        if isinstance(inst.src, Var) and wants(UseVarEvent):
            self._dispatch(UseVarEvent(inst, inst.src))
        if wants(AssignConstEvent):
            value = None
            if isinstance(inst.src, Const) and inst.op == "neg":
                value = -inst.src.value
            self._dispatch(AssignConstEvent(inst, inst.dst, value=value, op=inst.op))

    def _exec_malloc(self, inst: Malloc) -> None:
        if self.graph is not None:
            apply_instruction(self.graph, inst)
        self._na_reset(inst.dst)
        self._dispatch(AllocEvent(inst, inst.dst, heap=True, zeroed=inst.zeroed, may_fail=inst.may_fail))

    def _exec_alloc(self, inst: Alloc) -> None:
        if self.graph is not None:
            apply_instruction(self.graph, inst)
        self._na_reset(inst.dst)
        self._dispatch(AllocEvent(inst, inst.dst, heap=False, zeroed=inst.zeroed, may_fail=False))

    def _exec_decl_local(self, inst: DeclLocal) -> None:
        if self.graph is not None:
            apply_instruction(self.graph, inst)
        self._na_reset(inst.var)
        self._dispatch(DeclLocalEvent(inst, inst.var))

    def _exec_memset(self, inst: MemSet) -> None:
        if self.graph is not None:
            apply_instruction(self.graph, inst)
        self._dispatch(DerefEvent(inst, inst.ptr))
        self._dispatch(MemInitEvent(inst, inst.ptr))

    def _exec_free(self, inst: Free) -> None:
        if self.graph is not None:
            apply_instruction(self.graph, inst)
        self._dispatch(FreeEvent(inst, inst.ptr))

    def _exec_lockop(self, inst: LockOp) -> None:
        if self.graph is not None:
            apply_instruction(self.graph, inst)
        self._dispatch(LockEvent(inst, inst.lock, inst.acquire))

    def _exec_call_indirect(self, inst: CallIndirect) -> None:
        # Not followed (§7); havoc like an external call.
        if self.graph is not None:
            apply_instruction(self.graph, inst)
        for arg in inst.args:
            if isinstance(arg, Var) and isinstance(arg.type, PointerType):
                self._dispatch(EscapeEvent(inst, arg, "passed through function pointer"))
        if inst.dst is not None:
            if self.graph is not None:
                self.graph.detach(inst.dst)
            self._na_reset(inst.dst)
            self._dispatch(CallReturnEvent(inst, inst.dst, "<indirect>"))

    # -- terminators -------------------------------------------------------------------

    def _run_terminator(self, block: BasicBlock, frame: _Frame) -> None:
        term = block.terminator
        if term is None or isinstance(term, Unreachable):
            return  # dead end: the path is abandoned
        if isinstance(term, Ret):
            self._do_return(term, frame)
            return
        if isinstance(term, Jump):
            self._enter_block(term.target, frame)
            return
        assert isinstance(term, Branch)
        for taken, target in ((True, term.then_block), (False, term.else_block)):
            mark = self.trail.mark()
            tlen = len(self.trace)
            self.trace.append(("branch", term, taken))
            self._branch_events(term, taken)
            self._enter_block(target, frame)
            self.trail.undo_to(mark)
            del self.trace[tlen:]

    def _branch_events(self, term: Branch, taken: bool) -> None:
        cond = term.cond
        if not isinstance(cond, Var):
            return
        wants = self.manager.wants
        if not (wants(BranchNullEvent) or wants(BranchCmpEvent)):
            return
        def_inst = self.value_defs.get(cond.name)
        if def_inst is None or not def_inst.is_comparison:
            return
        op = def_inst.op if taken else NEGATED_REL[def_inst.op]
        lhs, rhs = def_inst.lhs, def_inst.rhs
        if isinstance(lhs, Const) and isinstance(rhs, Var):
            lhs, rhs = rhs, lhs
            op = SWAPPED_REL[op]
        if not (isinstance(lhs, Var) and isinstance(rhs, Const)):
            return
        if is_null_const(rhs) or (isinstance(lhs.type, PointerType) and rhs.value == 0):
            if op == "eq":
                self._dispatch(BranchNullEvent(term, lhs, True))
            elif op == "ne":
                self._dispatch(BranchNullEvent(term, lhs, False))
        elif op in _CMP_OPS:
            self._dispatch(BranchCmpEvent(term, lhs, op, rhs.value))

    def _do_return(self, term: Ret, frame: _Frame) -> None:
        value = term.value
        wants = self.manager.wants
        if isinstance(value, Var):
            if wants(UseVarEvent):
                self._dispatch(UseVarEvent(term, value))
            if wants(EscapeEvent):
                self._dispatch(EscapeEvent(term, value, "returned"))
        if wants(ReturnEvent):
            self._dispatch(ReturnEvent(term, value, frame.frame_id, frame.is_entry))
        if frame.is_entry:
            self.paths += 1
            if self.path_end_observer is not None:
                self.path_end_observer(self)
            if self.paths >= self.config.max_paths_per_entry:
                raise BudgetExceeded("path budget")
            return
        if self.config.merge_callee_exits:
            digest = self._exit_digest(frame, value)
            if digest in frame.exit_digests:
                return  # merged with an identical exit state (§4 P2)
            if len(frame.exit_digests) >= self.config.max_callee_exits_per_call:
                return
            frame.exit_digests.add(digest)
        block, index, caller_frame, call_inst = frame.cont
        mark = self.trail.mark()
        tlen = len(self.trace)
        old_frame_id = self.ctx.frame_id
        self.ctx.frame_id = caller_frame.frame_id
        # The callee is conceptually popped while the caller continues.
        popped = self._call_stack.pop()
        try:
            if call_inst.dst is not None:
                ret_value = value if value is not None else Const(0)
                self._move_like(call_inst.dst, ret_value, term)
                self.trace.append(("retval", call_inst.dst, ret_value))
                if isinstance(ret_value, Var):
                    self._dispatch(TransferEvent(term, call_inst.dst, caller_frame.frame_id))
            self.trace.append(("exit", frame.frame_id))
            self._run_insts(block, index + 1, caller_frame)
        finally:
            self._call_stack.append(popped)
            self.ctx.frame_id = old_frame_id
            self.trail.undo_to(mark)
            del self.trace[tlen:]

    def _exit_digest(self, frame: _Frame, value: Optional[Value]):
        """Summarize the callee's externally visible effects: the returned
        value's identity plus every typestate/alias binding it touched.

        Alias-node uids are fresh on every path, so digests canonicalize
        node-keyed entries by the *variable-name group* of the node —
        two exits whose effects group the same names the same way with
        the same states are indistinguishable to the caller.
        """
        # Names visible to the caller: anything in a frame still on the
        # call stack (minus the exiting callee) plus globals.  Callee
        # locals and temporaries are out of scope once it returns.
        visible_fns = set(self._call_stack)
        visible_fns.discard(frame.func.name)

        def visible(name: str) -> bool:
            if name.startswith("@"):
                return True
            fn = name[1:] if name.startswith("%") else name
            return fn.split(".", 1)[0] in visible_fns

        def group_of(node) -> Tuple[str, ...]:
            return tuple(sorted(n for n in node.vars if visible(n)))

        if isinstance(value, Const):
            ret_part = ("c", value.value)
        elif isinstance(value, Var):
            if self.graph is not None:
                if value.name in self.graph.skip_names:
                    # A skipped singleton's node would be the isolated
                    # {value.name} node — same canonical group.
                    ret_part = ("n", (value.name,) if visible(value.name) else ())
                else:
                    ret_part = ("n", group_of(self.graph.node_of(value)))
            else:
                ret_part = ("v", value.name)
        else:
            ret_part = ("void",)

        touched_states = set()
        for key in set(self.store.journal[frame.store_mark:]):
            canonical = self._canonical_node_key(key[1], group_of, visible)
            if canonical is None:
                continue  # state on a node the caller cannot reach
            touched_states.add(((key[0], canonical), self.store.get(key[0], key[1])))

        alias_part = set()
        if self.graph is not None:
            for name in set(self.graph.journal[frame.alias_mark:]):
                if not visible(name):
                    continue
                node = self.graph.node_of_name(name)
                if node is None:
                    alias_part.add((name, None, None))
                else:
                    alias_part.add((name, group_of(node), tuple(sorted(node.out))))
        return (ret_part, frozenset(touched_states), frozenset(alias_part))

    def _canonical_node_key(self, key, group_of, visible):
        """Stable form of a typestate key: node uids become the node's
        caller-visible name group; None when the node has no visible name
        (its state cannot affect the caller's continuation).

        P1.7 skip keys ``("s", name, gen)`` canonicalize bijectively with
        the node they stand in for: the current generation is the live
        isolated ``{name}`` node (group ``(name,)`` when visible), a
        stale generation is a detached varless node (``None``).
        """
        if self.graph is None or not isinstance(key, int):
            if (
                isinstance(key, tuple) and len(key) == 3 and key[0] == "s"
                and self.graph is not None and key[1] in self.graph.skip_names
            ):
                name, gen = key[1], key[2]
                if gen != self.graph.skip_generation(name):
                    return None
                return (name,) if visible(name) else None
            return key if not isinstance(key, str) or visible(key) else None
        node = self.graph.by_uid.get(key)
        if node is None:
            return None
        group = group_of(node)
        return group if group else None


#: exact-type dispatch for the hot instruction loop — the per-step
#: isinstance chain was a measurable share of exploration time; the
#: entries keep the chain's order so the fallback walk (used for
#: instruction subclasses) resolves identically
_EXEC_DISPATCH = {
    Move: PathExplorer._exec_move,
    Load: PathExplorer._exec_load,
    Store: PathExplorer._exec_store,
    Gep: PathExplorer._exec_gep,
    AddrOf: PathExplorer._exec_addr_of,
    BinOp: PathExplorer._exec_binop,
    UnOp: PathExplorer._exec_unop,
    Malloc: PathExplorer._exec_malloc,
    Alloc: PathExplorer._exec_alloc,
    DeclLocal: PathExplorer._exec_decl_local,
    MemSet: PathExplorer._exec_memset,
    Free: PathExplorer._exec_free,
    LockOp: PathExplorer._exec_lockop,
    CallIndirect: PathExplorer._exec_call_indirect,
}

_EXEC_FALLBACK_ORDER = tuple(_EXEC_DISPATCH.items())


def _stored_pseudo_var(inst: Store) -> Var:
    """NPD needs a key for "the location ``*ptr``" when NULL is stored
    through a pointer.  We derive a deterministic pseudo-variable name so
    later loads from the same location (which join the same alias node in
    aware mode) can see the null state."""
    return Var(f"*{inst.ptr.name}", inst.src.type)


def _fold_binop(inst: BinOp) -> Optional[int]:
    if isinstance(inst.lhs, Const) and isinstance(inst.rhs, Const):
        from ..smt.terms import _apply_op

        try:
            return _apply_op(inst.op, [inst.lhs.value, inst.rhs.value])
        except ValueError:
            return None
    return None
