"""Bug reports and human-readable rendering (PATA's final output)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..typestate import BugKind, PossibleBug


@dataclass
class BugReport:
    """A validated (stage-2 surviving) bug."""

    kind: BugKind
    checker: str
    subject: str
    message: str
    source_file: str
    source_line: int
    sink_file: str
    sink_line: int
    entry_function: str
    alias_set: Tuple[str, ...] = ()
    feasible_model: Optional[dict] = None

    @classmethod
    def from_possible(cls, bug: PossibleBug, model: Optional[dict] = None) -> "BugReport":
        return cls(
            kind=bug.kind,
            checker=bug.checker,
            subject=bug.subject,
            message=bug.message,
            source_file=bug.source.loc.filename,
            source_line=bug.source.loc.line,
            sink_file=bug.sink.loc.filename,
            sink_line=bug.sink.loc.line,
            entry_function=bug.entry_function,
            alias_set=bug.alias_set,
            feasible_model=model,
        )

    @property
    def location(self) -> str:
        return f"{self.sink_file}:{self.sink_line}"

    def render(self) -> str:
        lines = [
            f"{self.kind.value.upper()} [{self.checker}] at {self.sink_file}:{self.sink_line}",
            f"  {self.message}",
            f"  state established: {self.source_file}:{self.source_line}",
            f"  entry function:    {self.entry_function}",
        ]
        if self.alias_set:
            lines.append(f"  alias set:         {{{', '.join(self.alias_set)}}}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


@dataclass
class EntryStats:
    """Per-entry-function exploration record (the paper's Table 5 timing,
    disaggregated): one row per analysis root, in entry-list order.

    ``wall_seconds`` is measured in whichever process explored the entry;
    everything else is a deterministic function of the program and
    config, so two runs (or a sequential and a parallel run) agree on
    every field but the timing.
    """

    name: str
    paths: int = 0
    steps: int = 0
    wall_seconds: float = 0.0
    budget_exhausted: bool = False
    #: paths cut short on entering a checker-irrelevant CFG region (P1.5)
    paths_pruned: int = 0
    #: blocks of this entry marked irrelevant by the backward CFG pass
    blocks_pruned: int = 0
    #: True when the P1.5 entry pruning skipped this entry outright
    skipped: bool = False
    #: True when this entry's outcome was loaded from the incremental
    #: cache rather than explored (wall_seconds is 0 by definition then)
    cached: bool = False


@dataclass
class AnalysisStats:
    """Counters matching the rows of Table 5."""

    analyzed_files: int = 0
    analyzed_lines: int = 0
    entry_functions: int = 0
    explored_paths: int = 0
    executed_steps: int = 0
    typestates_aware: int = 0
    typestates_unaware: int = 0
    smt_constraints_aware: int = 0
    smt_constraints_unaware: int = 0
    dropped_repeated_bugs: int = 0
    dropped_false_bugs: int = 0
    validated_paths: int = 0
    budget_exhausted_entries: int = 0
    #: P1.5 relevance pruning: entries skipped outright, CFG blocks
    #: marked irrelevant across analyzed entries, and paths cut short
    entries_skipped: int = 0
    blocks_pruned: int = 0
    paths_pruned: int = 0
    time_seconds: float = 0.0
    #: per-phase wall-clock breakdown of ``time_seconds``: P1 collector,
    #: P1.5 relevance pre-analysis (incl. the cache plan), P2 entry
    #: exploration (the parallelizable phase), P2.5 race matching, and
    #: P3 validation.  These are the honest denominators for any speedup
    #: claim — only ``time_explore_seconds`` scales with workers
    time_collect_seconds: float = 0.0
    time_presolve_seconds: float = 0.0
    time_explore_seconds: float = 0.0
    time_match_seconds: float = 0.0
    time_filter_seconds: float = 0.0
    #: P1.7 tiered alias analysis (zero with ``--alias-tier off``):
    #: SSA values proven singleton — never aliased, so tracked without
    #: per-path graph nodes — the partition's may-alias cell count, and
    #: the unification pass's wall clock (cache hits make it ~0)
    singletons_proven: int = 0
    alias_cells: int = 0
    time_unify_seconds: float = 0.0
    #: P1.8 flow-sensitive tier (zero below ``--alias-tier flow``):
    #: names proven must-singleton at every reachable point of some
    #: function, strong-update kills applied over the value-flow graph,
    #: and the flow pass's wall clock (cache hits make it ~0)
    must_singletons: int = 0
    strong_updates: int = 0
    time_flow_seconds: float = 0.0
    #: worker processes that performed P2 (1 = in-process sequential)
    workers_used: int = 1
    #: entry batches dispatched to the worker pool (0 = in-process run);
    #: batches, not shards, are the streaming executor's stealing unit
    batches_dispatched: int = 0
    #: P2.5 race matching: distinct shared-state accesses recorded by
    #: the race checker, and disjoint-lockset pairs sent to stage 2
    shared_accesses: int = 0
    race_pairs_matched: int = 0
    #: P2.6 cross-module taint (zero unless the ``xtaint`` checker is in
    #: the spec): distinct export/import/relay half-flows recorded,
    #: cross-module pairs sent to stage 2, module summaries replayed
    #: from the cache layer (0 on a cold run), and the phase wall clock
    taint_flows_recorded: int = 0
    xtaint_pairs_matched: int = 0
    summaries_cached: int = 0
    time_xmatch_seconds: float = 0.0
    #: incremental cache (zero unless ``--cache`` is active): object
    #: store hits/misses across all layers, objects that failed their
    #: checksum, entries served from cache, entries this run explored
    cache_hits: int = 0
    cache_misses: int = 0
    cache_corrupt: int = 0
    entries_cached: int = 0
    entries_reanalyzed: int = 0
    #: analysis-as-a-service counters (zero for one-shot CLI runs): time
    #: this request waited in the daemon's FIFO queue before a scheduler
    #: slot, requests the owning session has served so far (including
    #: this one), and objects resident in the session's in-memory store
    #: across all cache layers
    queue_wait_seconds: float = 0.0
    requests_served: int = 0
    resident_cache_entries: int = 0
    #: this request was answered from the session's replay memo (the
    #: same names, bytes, config, and checkers were analyzed before)
    request_replayed: bool = False
    #: one record per analyzed entry function, in entry-list order
    per_entry: List[EntryStats] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-ready view of every counter plus the per-entry rows
        (CLI ``--stats-json``).  Scalars only — safe to ``json.dump``."""
        scalars = {
            name: value
            for name, value in vars(self).items()
            if isinstance(value, (int, float, bool))
        }
        scalars["per_entry"] = [dict(vars(e)) for e in self.per_entry]
        return scalars

    def render_entry_table(self) -> str:
        """ASCII table of the per-entry records (CLI ``--stats``)."""

        def status(e: EntryStats) -> str:
            if e.skipped:
                return "skipped"
            if e.cached:
                return "cached"
            return "exhausted" if e.budget_exhausted else "ok"

        headers = ["entry", "paths", "steps", "pruned", "seconds", "budget"]
        rows = [
            [e.name, str(e.paths), str(e.steps), str(e.paths_pruned),
             f"{e.wall_seconds:.3f}", status(e)]
            for e in self.per_entry
        ]
        widths = [max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
                  for i, h in enumerate(headers)]
        lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths))]
        lines.append("-+-".join("-" * w for w in widths))
        for row in rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)


@dataclass
class AnalysisResult:
    """What :class:`repro.core.pata.PATA` returns."""

    reports: List[BugReport] = field(default_factory=list)
    stats: AnalysisStats = field(default_factory=AnalysisStats)

    def by_kind(self, kind: BugKind) -> List[BugReport]:
        return [r for r in self.reports if r.kind is kind]

    def kind_counts(self) -> dict:
        counts: dict = {}
        for report in self.reports:
            counts[report.kind] = counts.get(report.kind, 0) + 1
        return counts

    def grouped_by_source(self) -> dict:
        """Reports grouped by the state-establishing (source) location.

        The paper notes (§5.1) that checking 797 reports took only 12
        hours because "some reported bugs have similar root causes ...
        and can be checked together" — reports sharing one source site
        are one root cause with several sinks (e.g. Fig. 12(a)'s four
        dereferences of one unchecked field)."""
        groups: dict = {}
        for report in self.reports:
            key = (report.source_file, report.source_line, report.checker)
            groups.setdefault(key, []).append(report)
        return groups

    def summary(self) -> str:
        counts = self.kind_counts()
        parts = [f"{len(self.reports)} bugs"]
        for kind, count in sorted(counts.items(), key=lambda kv: kv[0].name):
            parts.append(f"{kind.short}={count}")
        parts.append(f"paths={self.stats.explored_paths}")
        parts.append(f"dropped_false={self.stats.dropped_false_bugs}")
        parts.append(f"dropped_repeated={self.stats.dropped_repeated_bugs}")
        return ", ".join(parts)
