"""One-shot markdown evaluation report.

``generate_markdown_report`` runs every table/figure of the paper's
evaluation over one harness and renders a self-contained markdown
document — the programmatic cousin of EXPERIMENTS.md, with whatever
scale/profile set the caller chose.  Exposed on the CLI as
``repro-pata eval all --markdown report.md``.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from .. import __version__
from .harness import EvaluationHarness
from .tables import (
    fig11_distribution,
    table4_os_info,
    table5_analysis,
    table6_sensitivity,
    table7_generality,
    table8_comparison,
    unique_real_bugs_vs_tools,
)

_SECTIONS = (
    ("Table 4 — checked OSes", table4_os_info),
    ("Table 5 — PATA analysis results", table5_analysis),
    ("Figure 11 — bug distribution", fig11_distribution),
    ("Table 6 — sensitivity (PATA vs PATA-NA)", table6_sensitivity),
    ("Table 7 — additional checkers", table7_generality),
    ("Table 8 — tool comparison", table8_comparison),
)


def generate_markdown_report(
    harness: Optional[EvaluationHarness] = None,
    scale: float = 1.0,
) -> str:
    """Run the full evaluation and return the markdown report text."""
    if harness is None:
        harness = EvaluationHarness(scale=scale)
    started = time.monotonic()
    lines: List[str] = [
        "# PATA reproduction — evaluation report",
        "",
        f"- library version: `{__version__}`",
        f"- corpus scale: `{harness.scale}`",
        f"- profiles: {', '.join(p.name for p in harness.profiles)}",
        "",
        "Shapes (not absolute numbers) are comparable to the paper; see",
        "EXPERIMENTS.md for the per-claim mapping.",
    ]
    table8_data = None
    for title, fn in _SECTIONS:
        data, text = fn(harness)
        if fn is table8_comparison:
            table8_data = data
        lines += ["", f"## {title}", "", "```", text, "```"]
    if table8_data is not None:
        pata_only, missed = unique_real_bugs_vs_tools(table8_data)
        lines += [
            "",
            "## Headline deltas",
            "",
            f"- real bugs unique to PATA across all OSes: **{pata_only}** "
            f"(paper: 328)",
            f"- real bugs PATA missed that some baseline found: **{missed}** "
            f"(paper: 27; ours all live in config-excluded files)",
        ]
    elapsed = time.monotonic() - started
    lines += ["", f"_Generated in {elapsed:.1f}s._", ""]
    return "\n".join(lines)
