"""The paper's tables and figures, regenerated over the synthetic corpora.

Each ``table*``/``fig*`` function takes an :class:`EvaluationHarness`,
runs what it needs (results are cached per harness), and returns a
``(data, rendered_text)`` pair.  EXPERIMENTS.md records paper-vs-measured
for each of these.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence, Tuple

from ..baselines import (
    CSALike,
    CoccinelleLike,
    CppcheckLike,
    InferLike,
    PataNA,
    SVFNull,
    SaberLike,
)
from ..corpus import match_findings, reachable_truth
from ..typestate import BugKind
from .harness import (
    EXTENDED_KINDS,
    EvaluationHarness,
    PRIMARY_KINDS,
    format_confirmed,
    format_found,
    format_real,
    render_table,
)


def table4_os_info(harness: EvaluationHarness) -> Tuple[dict, str]:
    """Table 4: information about the four checked OSes."""
    rows = []
    data = {}
    for profile in harness.profiles:
        run = harness.run_for(profile)
        corpus = run.corpus
        data[profile.name] = {
            "version": profile.version_label,
            "files": len(corpus.files),
            "loc": corpus.total_lines(),
        }
        rows.append([profile.name, profile.version_label, len(corpus.files), f"{corpus.total_lines():,}"])
    text = render_table(
        ["OS", "Version", "Source files (*.c)", "LOC"], rows,
        "Table 4: information about the four checked OSes (synthetic corpora)",
    )
    return data, text


def table5_analysis(harness: EvaluationHarness) -> Tuple[dict, str]:
    """Table 5: PATA's per-OS analysis results."""
    data: Dict[str, dict] = {}
    for profile in harness.profiles:
        run = harness.run_pata(profile)
        stats = run.pata_result.stats
        corpus = run.corpus
        match = run.pata_match
        data[profile.name] = {
            "files_analyzed": len(corpus.compiled_files()),
            "files_all": len(corpus.files),
            "lines_analyzed": corpus.compiled_lines(),
            "lines_all": corpus.total_lines(),
            "typestates_aware": stats.typestates_aware,
            "typestates_unaware": stats.typestates_unaware,
            "smt_aware": stats.smt_constraints_aware,
            "smt_unaware": stats.smt_constraints_unaware,
            "dropped_repeated": stats.dropped_repeated_bugs,
            "dropped_false": stats.dropped_false_bugs,
            "found": match.found,
            "found_by_kind": dict(match.found_by_kind),
            "real": match.real,
            "real_by_kind": dict(match.real_by_kind),
            "confirmed": match.confirmed,
            "fp_rate": match.false_positive_rate,
            "time_s": run.pata_time,
        }
    names = [p.name for p in harness.profiles]
    total = {
        key: sum(data[n][key] for n in names)
        for key in (
            "files_analyzed", "files_all", "lines_analyzed", "lines_all",
            "typestates_aware", "typestates_unaware", "smt_aware", "smt_unaware",
            "dropped_repeated", "dropped_false", "found", "real", "confirmed",
        )
    }
    total["time_s"] = sum(data[n]["time_s"] for n in names)
    data["total"] = total

    def row(label, fn, totfmt=None):
        cells = [label] + [fn(data[n]) for n in names]
        cells.append(totfmt(total) if totfmt else fn(total))
        return cells

    matches = {p.name: harness.run_for(p).pata_match for p in harness.profiles}
    rows = [
        row("Source files (analyzed/all)", lambda d: f"{d['files_analyzed']}/{d['files_all']}"),
        row("Source lines (analyzed/all)", lambda d: f"{d['lines_analyzed']:,}/{d['lines_all']:,}"),
        row("Typestates (aware/unaware)", lambda d: f"{d['typestates_aware']:,}/{d['typestates_unaware']:,}"),
        row("SMT constraints (aware/unaware)", lambda d: f"{d['smt_aware']:,}/{d['smt_unaware']:,}"),
        row("Dropped repeated bugs", lambda d: f"{d['dropped_repeated']:,}"),
        row("Dropped false bugs", lambda d: f"{d['dropped_false']:,}"),
    ]
    found_row = ["Found bugs (NPD/UVA/ML)"]
    real_row = ["Real bugs (NPD/UVA/ML)"]
    conf_row = ["Confirmed bugs (NPD/UVA/ML)"]
    for name in names:
        m = matches[name]
        found_row.append(format_found(m))
        real_row.append(format_real(m))
        conf_row.append(format_confirmed(m))
    found_row.append(str(total["found"]))
    real_row.append(str(total["real"]))
    conf_row.append(str(total["confirmed"]))
    rows.extend([found_row, real_row, conf_row])
    rows.append(row("Time (s)", lambda d: f"{d['time_s']:.1f}"))
    text = render_table(
        ["Description"] + names + ["Total"], rows,
        "Table 5: analysis results of the four OSes",
    )
    return data, text


def fig11_distribution(harness: EvaluationHarness) -> Tuple[dict, str]:
    """Fig. 11: distribution of the real found bugs by OS part."""
    linux_cats: Dict[str, int] = {}
    iot_cats: Dict[str, int] = {}
    for profile in harness.profiles:
        run = harness.run_pata(profile)
        target = linux_cats if profile.name == "linux" else iot_cats
        for category, count in run.pata_match.real_by_category.items():
            target[category] = target.get(category, 0) + count

    def shares(cats: Dict[str, int]) -> Dict[str, float]:
        total = sum(cats.values()) or 1
        return {c: n / total for c, n in sorted(cats.items(), key=lambda kv: -kv[1])}

    data = {"linux": shares(linux_cats), "iot": shares(iot_cats)}
    rows = []
    for group, cats in (("Linux", data["linux"]), ("IoT OSes", data["iot"])):
        for category, share in cats.items():
            rows.append([group, category, f"{share:.0%}"])
    text = render_table(["Group", "OS part", "Share of real bugs"], rows,
                        "Figure 11: distribution of the found bugs")
    return data, text


def table6_sensitivity(harness: EvaluationHarness) -> Tuple[dict, str]:
    """Table 6: PATA vs PATA-NA on the Linux-profile corpus."""
    profile = next(p for p in harness.profiles if p.name == "linux")
    run = harness.run_pata(profile)
    na_tool = PataNA(config=harness.config)
    started = time.monotonic()
    na_result, na_match = harness.run_tool(profile, na_tool)
    na_time = time.monotonic() - started
    pata_match = run.pata_match
    data = {
        "pata": {
            "found": pata_match.found, "real": pata_match.real,
            "fp_rate": pata_match.false_positive_rate, "time_s": run.pata_time,
            "found_by_kind": dict(pata_match.found_by_kind),
            "real_by_kind": dict(pata_match.real_by_kind),
            "matched": set(pata_match.matched_uids),
        },
        "pata_na": {
            "found": na_match.found, "real": na_match.real,
            "fp_rate": na_match.false_positive_rate, "time_s": na_time,
            "found_by_kind": dict(na_match.found_by_kind),
            "real_by_kind": dict(na_match.real_by_kind),
            "matched": set(na_match.matched_uids),
        },
    }
    rows = [
        ["Found bugs (NPD/UVA/ML)", format_found(na_match), format_found(pata_match)],
        ["Real bugs (NPD/UVA/ML)", format_real(na_match), format_real(pata_match)],
        ["False-positive rate", f"{na_match.false_positive_rate:.0%}", f"{pata_match.false_positive_rate:.0%}"],
        ["Time (s)", f"{na_time:.1f}", f"{run.pata_time:.1f}"],
    ]
    text = render_table(["Description", "PATA-NA", "PATA"], rows,
                        "Table 6: sensitivity analysis results in Linux")
    return data, text


def table7_generality(harness: EvaluationHarness) -> Tuple[dict, str]:
    """Table 7: the three additional checkers on the Linux-profile corpus."""
    profile = next(p for p in harness.profiles if p.name == "linux")
    run = harness.run_pata(profile, all_checkers=True, kinds=tuple(BugKind))
    match = run.pata_match
    data = {}
    rows = []
    labels = {
        BugKind.DOUBLE_LOCK: "Double lock/unlock",
        BugKind.ARRAY_UNDERFLOW: "Array index underflow",
        BugKind.DIV_BY_ZERO: "Division by zero",
    }
    total_found = total_real = 0
    for kind in EXTENDED_KINDS:
        found = match.found_by_kind.get(kind, 0)
        real = match.real_by_kind.get(kind, 0)
        data[kind.short] = {"found": found, "real": real}
        rows.append([labels[kind], found, real])
        total_found += found
        total_real += real
    rows.append(["Total", total_found, total_real])
    data["total"] = {"found": total_found, "real": total_real}
    text = render_table(["Bug type", "Found bugs", "Real bugs"], rows,
                        "Table 7: bugs found by three additional checkers in Linux")
    return data, text


# Table 8 tool matrix: (tool factory, kinds detected, source_based,
# {os: status override}).  The paper could not run Smatch/CSA on the IoT
# OSes (compile-script failures) or Infer on Linux; Saber/SVF OOM on Linux
# through their points-to budget.
def _tool_specs():
    return [
        (CppcheckLike, PRIMARY_KINDS, True, {}),
        (CoccinelleLike, (BugKind.NPD,), True, {}),
        (SmatchCompat, PRIMARY_KINDS, False, {"zephyr": "compile_error", "riot": "compile_error", "tencentos": "compile_error"}),
        (CSACompat, PRIMARY_KINDS, False, {"zephyr": "compile_error", "riot": "compile_error", "tencentos": "compile_error"}),
        (InferCompat, PRIMARY_KINDS, False, {"linux": "compile_error"}),
        (SaberLike, (BugKind.ML,), False, {}),
        (SVFNull, (BugKind.NPD,), False, {}),
    ]


# Thin aliases so the spec table reads like the paper's tool list.
from ..baselines import SmatchLike as SmatchCompat  # noqa: E402
from ..baselines import CSALike as CSACompat  # noqa: E402
from ..baselines import InferLike as InferCompat  # noqa: E402


def table8_comparison(harness: EvaluationHarness) -> Tuple[dict, str]:
    """Table 8: comparison against the seven baseline regimes."""
    data: Dict[str, dict] = {}
    rows: List[List[str]] = []
    for profile in harness.profiles:
        run = harness.run_pata(profile)
        os_data: Dict[str, dict] = {}
        for factory, kinds, source_based, overrides in _tool_specs():
            tool = factory()
            status = overrides.get(profile.name)
            if status is not None:
                os_data[tool.name] = {"status": status}
                continue
            result, match = harness.run_tool(profile, tool, kinds=kinds, source_based=source_based)
            if result.status != "ok":
                os_data[tool.name] = {"status": result.status}
                continue
            os_data[tool.name] = {
                "status": "ok",
                "found": match.found,
                "real": match.real,
                "fp_rate": match.false_positive_rate,
                "time_s": result.time_seconds,
                "matched": set(match.matched_uids),
            }
        os_data["pata"] = {
            "status": "ok",
            "found": run.pata_match.found,
            "real": run.pata_match.real,
            "fp_rate": run.pata_match.false_positive_rate,
            "time_s": run.pata_time,
            "matched": set(run.pata_match.matched_uids),
        }
        data[profile.name] = os_data
        for metric in ("found", "real", "time_s"):
            row = [profile.name, {"found": "Found bugs", "real": "Real bugs", "time_s": "Time (s)"}[metric]]
            for tool_name in [f().name for f, *_ in _tool_specs()] + ["pata"]:
                cell = os_data.get(tool_name, {})
                if cell.get("status") == "oom":
                    row.append("OOM")
                elif cell.get("status") == "compile_error":
                    row.append("-")
                elif metric == "time_s":
                    row.append(f"{cell.get(metric, 0):.1f}")
                else:
                    row.append(str(cell.get(metric, 0)))
            rows.append(row)
    headers = ["OS", "Metric"] + [f().name for f, *_ in _tool_specs()] + ["pata"]
    text = render_table(headers, rows, "Table 8: comparison results of the four OSes")
    return data, text


def unique_real_bugs_vs_tools(data: Dict[str, dict]) -> Tuple[int, int]:
    """(real bugs PATA finds that no baseline found, real bugs baselines
    find that PATA missed) — the Table 8 discussion numbers."""
    pata_only = 0
    missed_by_pata = 0
    for os_data in data.values():
        pata_matched = os_data.get("pata", {}).get("matched", set())
        tool_matched = set()
        for name, cell in os_data.items():
            if name == "pata":
                continue
            tool_matched |= cell.get("matched", set())
        pata_only += len(pata_matched - tool_matched)
        missed_by_pata += len(tool_matched - pata_matched)
    return pata_only, missed_by_pata
