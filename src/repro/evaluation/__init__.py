"""Evaluation harness regenerating the paper's tables and figures."""

from .harness import EXTENDED_KINDS, EvaluationHarness, OSRun, PRIMARY_KINDS, render_table
from .report import generate_markdown_report
from .tables import (
    fig11_distribution,
    table4_os_info,
    table5_analysis,
    table6_sensitivity,
    table7_generality,
    table8_comparison,
    unique_real_bugs_vs_tools,
)

__all__ = [
    "EXTENDED_KINDS", "EvaluationHarness", "OSRun", "PRIMARY_KINDS",
    "render_table",
    "generate_markdown_report",
    "fig11_distribution", "table4_os_info", "table5_analysis",
    "table6_sensitivity", "table7_generality", "table8_comparison",
    "unique_real_bugs_vs_tools",
]
