"""Evaluation harness: runs PATA and the baselines over the generated
corpora and produces the paper's tables and figures (see DESIGN.md §5 for
the experiment index).

Everything is deterministic given the profiles' seeds.  ``scale`` shrinks
the corpora uniformly so the full suite runs in CI-sized time budgets;
the benchmark targets use scale=1.0.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .. import PATA, AnalysisConfig
from ..baselines import (
    BaselineTool,
    CSALike,
    CoccinelleLike,
    CppcheckLike,
    InferLike,
    PataNA,
    SVFNull,
    SaberLike,
    ToolResult,
)
from ..corpus import (
    ALL_PROFILES,
    GeneratedOS,
    MatchResult,
    OSProfile,
    generate,
    match_findings,
    reachable_truth,
)
from ..ir import Program
from ..lang import compile_program
from ..typestate import BugKind

PRIMARY_KINDS = (BugKind.NPD, BugKind.UVA, BugKind.ML)
EXTENDED_KINDS = (BugKind.DOUBLE_LOCK, BugKind.ARRAY_UNDERFLOW, BugKind.DIV_BY_ZERO)


@dataclass
class OSRun:
    """Everything measured for one OS corpus."""

    corpus: GeneratedOS
    program: Program            # compiled (config-enabled) files only
    full_program: Program       # every file (for source-based tools)
    pata_result: object = None
    pata_match: Optional[MatchResult] = None
    pata_time: float = 0.0
    tool_results: Dict[str, ToolResult] = field(default_factory=dict)
    tool_matches: Dict[str, MatchResult] = field(default_factory=dict)


class EvaluationHarness:
    """Caches corpora, compiled programs and tool runs per OS profile; see the module docstring."""

    def __init__(self, scale: float = 1.0, profiles: Optional[Sequence[OSProfile]] = None,
                 config: Optional[AnalysisConfig] = None):
        self.scale = scale
        self.profiles = list(profiles) if profiles is not None else list(ALL_PROFILES)
        self.config = config or AnalysisConfig()
        self._runs: Dict[str, OSRun] = {}

    # -- corpus / program caching --------------------------------------------------

    def run_for(self, profile: OSProfile) -> OSRun:
        if profile.name in self._runs:
            return self._runs[profile.name]
        corpus = generate(profile.scaled(self.scale))
        program = compile_program(corpus.compiled_sources())
        full_program = compile_program(corpus.all_sources())
        run = OSRun(corpus=corpus, program=program, full_program=full_program)
        self._runs[profile.name] = run
        return run

    # -- PATA ------------------------------------------------------------------------

    def run_pata(self, profile: OSProfile, all_checkers: bool = False,
                 kinds: Sequence[BugKind] = PRIMARY_KINDS) -> OSRun:
        run = self.run_for(profile)
        started = time.monotonic()
        pata = PATA.with_all_checkers(config=self.config) if all_checkers else PATA(config=self.config)
        result = pata.analyze(run.program)
        run.pata_time = time.monotonic() - started
        run.pata_result = result
        findings = [(r.kind, r.sink_file, r.sink_line) for r in result.reports]
        run.pata_match = match_findings(findings, run.corpus, "pata", restrict_kinds=kinds)
        return run

    # -- baselines ---------------------------------------------------------------------

    def run_tool(self, profile: OSProfile, tool: BaselineTool,
                 kinds: Sequence[BugKind] = PRIMARY_KINDS,
                 source_based: bool = False) -> Tuple[ToolResult, MatchResult]:
        """``source_based`` tools see every file (no compilation step)."""
        run = self.run_for(profile)
        program = run.full_program if source_based else run.program
        result = tool.analyze(program)
        findings = [(f.kind, f.file, f.line) for f in result.findings]
        match = match_findings(findings, run.corpus, tool.name, restrict_kinds=kinds)
        run.tool_results[tool.name] = result
        run.tool_matches[tool.name] = match
        return result, match


# -----------------------------------------------------------------------------
# Rendering helpers
# -----------------------------------------------------------------------------


def render_table(headers: List[str], rows: List[List[str]], title: str = "") -> str:
    """Render rows as an aligned ASCII table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def kind_triple(match: MatchResult, counts: Dict[BugKind, int], kinds=PRIMARY_KINDS) -> str:
    """Format per-kind counts as ``a/b/c``."""
    return "/".join(str(counts.get(k, 0)) for k in kinds)


def format_found(match: MatchResult, kinds=PRIMARY_KINDS) -> str:
    """Format a match's found counts as ``N (a/b/c)``."""
    return f"{match.found} ({kind_triple(match, match.found_by_kind, kinds)})"


def format_real(match: MatchResult, kinds=PRIMARY_KINDS) -> str:
    """Format a match's real counts as ``N (a/b/c)``."""
    return f"{match.real} ({kind_triple(match, match.real_by_kind, kinds)})"


def format_confirmed(match: MatchResult, kinds=PRIMARY_KINDS) -> str:
    """Format a match's confirmed counts as ``N (a/b/c)``."""
    return f"{match.confirmed} ({kind_triple(match, match.confirmed_by_kind, kinds)})"
