"""Dynamic confirmation of static bug reports.

The paper's Table 5 counts bugs "confirmed by OS developers" — a human
re-derives the trigger and watches the bug happen.  This module automates
the analogue: given a :class:`~repro.core.report.BugReport`, re-run the
report's entry function in the concrete interpreter over a small grid of
adversarial inputs (NULL/valid/uninitialized pointers, boundary integers,
succeeding/failing allocators) and check whether the *matching fault
fires at the reported location*.

A confirmed report is definitely a true positive.  An unconfirmed report
is not necessarily false — the grid is finite — exactly like unanswered
bug reports in the paper's evaluation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.report import BugReport
from ..ir import Function, PointerType, Program
from ..typestate import BugKind
from .faults import Fault, StepLimitExceeded
from .machine import Loc, Machine, UNDEF

#: per-parameter candidate input specs
_POINTER_SPECS = ("null", "zeroed", "uninit")
_INT_SPECS = (-1, 0, 1, 2, 5)


@dataclass
class Confirmation:
    report: BugReport
    confirmed: bool
    #: human-readable description of the triggering inputs (when confirmed)
    witness: Optional[str] = None
    fault: Optional[Fault] = None
    runs: int = 0


class DynamicConfirmer:
    """Re-executes bug reports over an adversarial input grid; see the module docstring."""

    def __init__(self, program: Program, max_runs: int = 96, fuel: int = 100_000):
        self.program = program
        self.max_runs = max_runs
        self.fuel = fuel

    # -- public API ---------------------------------------------------------------

    def confirm(self, report: BugReport) -> Confirmation:
        entry = self.program.lookup(report.entry_function)
        if entry is None:
            return Confirmation(report, False)
        runs = 0
        for alloc_ok in (True, False):
            for combo in self._input_grid(entry):
                if runs >= self.max_runs:
                    return Confirmation(report, False, runs=runs)
                runs += 1
                verdict = self._try(entry, combo, alloc_ok, report)
                if verdict is not None:
                    verdict.runs = runs
                    return verdict
        return Confirmation(report, False, runs=runs)

    def confirm_all(self, reports: Sequence[BugReport]) -> List[Confirmation]:
        return [self.confirm(r) for r in reports]

    # -- internals ------------------------------------------------------------------

    def _input_grid(self, entry: Function):
        per_param = []
        for param in entry.params:
            if isinstance(param.type, PointerType):
                per_param.append(_POINTER_SPECS)
            else:
                per_param.append(_INT_SPECS)
        if not per_param:
            yield ()
            return
        yield from itertools.product(*per_param)

    def _try(self, entry: Function, combo, alloc_ok: bool, report: BugReport) -> Optional[Confirmation]:
        machine = Machine(
            self.program,
            fuel=self.fuel,
            allocator_policy=lambda site: alloc_ok,
        )
        args = [self._materialize(machine, spec) for spec in combo]
        fault: Optional[Fault] = None
        returned = None
        try:
            returned = machine.call(entry, args)
        except StepLimitExceeded:
            return None
        except Fault as caught:
            fault = caught
        if report.kind is BugKind.ML:
            # Leaks manifest as unreachable unfreed objects, not faults.
            if fault is None:
                for obj in machine.leaked_objects(returned):
                    if obj.alloc_loc is not None and self._matches_source(obj.alloc_loc, report):
                        return Confirmation(
                            report, True,
                            witness=self._describe(combo, alloc_ok),
                        )
            return None
        if fault is None or fault.kind is not report.kind or fault.loc is None:
            return None
        if fault.loc.filename == report.sink_file and fault.loc.line == report.sink_line:
            return Confirmation(report, True, witness=self._describe(combo, alloc_ok), fault=fault)
        return None

    @staticmethod
    def _matches_source(loc, report: BugReport) -> bool:
        return loc.filename == report.source_file and loc.line == report.source_line

    @staticmethod
    def _materialize(machine: Machine, spec):
        if spec == "null":
            return 0
        if spec == "zeroed":
            return machine.make_argument_object(zeroed=True)
        if spec == "uninit":
            return machine.make_argument_object(zeroed=False)
        return spec

    @staticmethod
    def _describe(combo, alloc_ok: bool) -> str:
        parts = [str(spec) for spec in combo]
        alloc = "allocations succeed" if alloc_ok else "allocations fail"
        return f"args=({', '.join(parts)}), {alloc}"
