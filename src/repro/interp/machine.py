"""A concrete interpreter for the repro IR.

Executes mini-C programs directly on their IR, with a fault model aligned
to PATA's bug kinds: dereferencing NULL, reading uninitialized memory or
locals, dividing by zero, negative array indexes, double lock/unlock,
use-after-free and double-free all raise typed :mod:`faults`.

The interpreter serves three purposes in this repository:

* **dynamic confirmation** of static reports (:mod:`repro.interp.confirm`)
  — the honest analogue of the paper's "confirmed by OS developers" row;
* **corpus validation** — injected bugs demonstrably fire at runtime;
* a reference semantics for the lowering (differential tests).

Semantics notes: objects are field dictionaries (nested structs use
dotted labels); static storage is zero-initialized as in C, stack and
non-zeroing heap allocations are not; external functions return values
chosen by a caller-provided oracle (default 0).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field as dataclass_field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..ir import (
    AddrOf,
    Alloc,
    BinOp,
    Branch,
    Call,
    CallIndirect,
    Const,
    DeclLocal,
    Free,
    Function,
    Gep,
    Jump,
    Load,
    LockOp,
    Malloc,
    MemSet,
    Move,
    Program,
    Ret,
    Store,
    UnOp,
    Unreachable,
    Value,
    Var,
)
from .faults import (
    DivisionByZeroFault,
    DoubleFreeFault,
    DoubleLockFault,
    Fault,
    InterpreterError,
    NegativeIndexFault,
    NullDereferenceFault,
    StepLimitExceeded,
    UninitializedReadFault,
    UseAfterFreeFault,
)


class _Undef:
    """The value of an uninitialized cell; faults on use."""

    def __repr__(self) -> str:
        return "<undef>"


UNDEF = _Undef()

_obj_ids = itertools.count(1)


@dataclass
class HeapObject:
    oid: int
    kind: str  # "heap" | "stack" | "global" | "opaque"
    zeroed: bool
    alloc_loc: Any = None
    fields: Dict[str, Any] = dataclass_field(default_factory=dict)
    freed: bool = False
    lock_depth: int = 0

    def __hash__(self):
        return self.oid


@dataclass(frozen=True)
class Loc:
    """A pointer value: object + (possibly dotted) field label.

    ``label=None`` addresses the object's root cell (scalar objects)."""

    obj: HeapObject
    label: Optional[str] = None

    def sub(self, field_label: str) -> "Loc":
        combined = field_label if self.label is None else f"{self.label}.{field_label}"
        return Loc(self.obj, combined)

    def __repr__(self) -> str:
        suffix = f".{self.label}" if self.label else ""
        return f"&obj{self.obj.oid}{suffix}"


RuntimeValue = Union[int, Loc, _Undef]


class Machine:
    """One interpreter instance over a program.

    ``externals`` maps external function names to ``fn(args) -> value``;
    unlisted externals return 0.  ``allocator_policy(site_uid) -> bool``
    decides whether a fallible allocation succeeds (default: always).
    """

    def __init__(
        self,
        program: Program,
        externals: Optional[Dict[str, Callable]] = None,
        fuel: int = 200_000,
        allocator_policy: Optional[Callable[[int], bool]] = None,
        max_call_depth: int = 64,
    ):
        self.program = program
        self.externals = dict(externals or {})
        self.fuel = fuel
        self.allocator_policy = allocator_policy or (lambda site: True)
        self.max_call_depth = max_call_depth
        self.globals_obj = HeapObject(next(_obj_ids), "global", zeroed=True)
        #: storage objects of global aggregates, by variable name
        self._global_aggregates: Dict[str, HeapObject] = {}
        self.heap_objects: List[HeapObject] = []
        self._opaque: Dict[int, HeapObject] = {}
        self._steps = 0
        self._depth = 0

    # -- object helpers -------------------------------------------------------

    def new_object(self, kind: str, zeroed: bool, loc=None) -> HeapObject:
        obj = HeapObject(next(_obj_ids), kind, zeroed, alloc_loc=loc)
        if kind == "heap":
            self.heap_objects.append(obj)
        return obj

    def make_argument_object(self, zeroed: bool = True) -> Loc:
        """A fresh object suitable as a pointer argument to an entry call."""
        return Loc(self.new_object("stack", zeroed))

    def _read_cell(self, loc: Loc, at) -> RuntimeValue:
        obj = loc.obj
        if obj.freed:
            raise UseAfterFreeFault(f"read of freed object obj{obj.oid}", at)
        key = loc.label if loc.label is not None else "$cell"
        if key not in obj.fields:
            if obj.zeroed:
                return 0
            raise UninitializedReadFault(f"read of uninitialized {loc!r}", at)
        value = obj.fields[key]
        if value is UNDEF:
            raise UninitializedReadFault(f"read of uninitialized {loc!r}", at)
        return value

    def _write_cell(self, loc: Loc, value: RuntimeValue, at) -> None:
        obj = loc.obj
        if obj.freed:
            raise UseAfterFreeFault(f"write to freed object obj{obj.oid}", at)
        key = loc.label if loc.label is not None else "$cell"
        obj.fields[key] = value

    def _as_loc(self, value: RuntimeValue, at) -> Loc:
        if isinstance(value, Loc):
            return value
        if value is UNDEF:
            raise UninitializedReadFault("uninitialized pointer dereferenced", at)
        if value == 0:
            raise NullDereferenceFault("NULL pointer dereferenced", at)
        # Integer constants used as pointers (string literals, MMIO-ish
        # magic values) get a lazily created opaque zeroed buffer.
        obj = self._opaque.get(value)
        if obj is None:
            obj = self.new_object("opaque", zeroed=True)
            self._opaque[value] = obj
        return Loc(obj)

    # -- entry points ------------------------------------------------------------

    def call(self, func: Union[str, Function], args: Sequence[RuntimeValue] = ()) -> RuntimeValue:
        """Invoke ``func`` with concrete arguments and run to completion."""
        if isinstance(func, str):
            resolved = self.program.lookup(func)
            if resolved is None:
                raise InterpreterError(f"unknown function {func!r}")
            func = resolved
        return self._call_function(func, list(args), at=None)

    def leaked_objects(self, returned: RuntimeValue = None) -> List[HeapObject]:
        """Heap objects neither freed nor reachable from the returned value
        or any global — the dynamic analogue of a memory leak."""
        reachable: set = set()
        work: List[HeapObject] = [self.globals_obj]
        if isinstance(returned, Loc):
            work.append(returned.obj)
        while work:
            obj = work.pop()
            if obj.oid in reachable:
                continue
            reachable.add(obj.oid)
            for value in obj.fields.values():
                if isinstance(value, Loc):
                    work.append(value.obj)
        return [o for o in self.heap_objects if not o.freed and o.oid not in reachable]

    # -- execution ---------------------------------------------------------------

    def _call_function(self, func: Function, args: List[RuntimeValue], at) -> RuntimeValue:
        if func.is_declaration:
            return self._call_external(func.name, args, at)
        if self._depth >= self.max_call_depth:
            raise StepLimitExceeded("call depth exceeded", at)
        self._depth += 1
        try:
            env: Dict[str, RuntimeValue] = {}
            for param, value in zip(func.params, args):
                env[param.name] = value
            for param in func.params[len(args):]:
                env[param.name] = 0
            block = func.entry
            while True:
                for inst in block.instructions:
                    self._step(inst, env)
                term = block.terminator
                self._burn(term)
                if isinstance(term, Ret):
                    if term.value is None:
                        return 0
                    result = self._operand(term.value, env, term)
                    if result is UNDEF:
                        raise UninitializedReadFault("uninitialized value returned", term.loc)
                    return result
                if isinstance(term, Jump):
                    block = term.target
                elif isinstance(term, Branch):
                    cond = self._operand(term.cond, env, term)
                    if cond is UNDEF:
                        raise UninitializedReadFault("branch on uninitialized value", term.loc)
                    truthy = (cond != 0) if isinstance(cond, int) else True  # a Loc is non-NULL
                    block = term.then_block if truthy else term.else_block
                elif isinstance(term, Unreachable):
                    raise InterpreterError("reached 'unreachable'", term.loc)
                else:
                    raise InterpreterError(f"unknown terminator {term!r}", term.loc)
        finally:
            self._depth -= 1

    def _burn(self, inst) -> None:
        self._steps += 1
        if self._steps > self.fuel:
            raise StepLimitExceeded("instruction fuel exhausted", getattr(inst, "loc", None))

    def _operand(self, value: Value, env: Dict[str, RuntimeValue], inst) -> RuntimeValue:
        if isinstance(value, Const):
            return value.value
        assert isinstance(value, Var)
        if value.is_global:
            if value.is_aggregate:
                obj = self._global_aggregates.get(value.name)
                if obj is None:
                    obj = self.new_object("global", zeroed=True)
                    self._global_aggregates[value.name] = obj
                return Loc(obj)
            key = value.name
            if key not in self.globals_obj.fields:
                return 0  # static storage is zero-initialized
            return self.globals_obj.fields[key]
        if value.name not in env:
            raise InterpreterError(f"use of unbound variable {value.name}", inst.loc)
        return env[value.name]

    def _assign(self, var: Var, value: RuntimeValue, env: Dict[str, RuntimeValue]) -> None:
        if var.is_global:
            self.globals_obj.fields[var.name] = value
        else:
            env[var.name] = value

    # -- instruction dispatch -------------------------------------------------------

    def _step(self, inst, env: Dict[str, RuntimeValue]) -> None:
        self._burn(inst)
        if isinstance(inst, Move):
            self._assign(inst.dst, self._operand(inst.src, env, inst), env)
        elif isinstance(inst, DeclLocal):
            env[inst.var.name] = UNDEF
        elif isinstance(inst, Load):
            loc = self._as_loc(self._operand(inst.ptr, env, inst), inst.loc)
            self._assign(inst.dst, self._read_cell(loc, inst.loc), env)
        elif isinstance(inst, Store):
            loc = self._as_loc(self._operand(inst.ptr, env, inst), inst.loc)
            self._write_cell(loc, self._operand(inst.src, env, inst), inst.loc)
        elif isinstance(inst, Gep):
            base = self._as_loc(self._operand(inst.base, env, inst), inst.loc)
            label = inst.field
            if inst.index is not None:
                index = self._operand(inst.index, env, inst)
                if index is UNDEF:
                    raise UninitializedReadFault("uninitialized array index", inst.loc)
                if isinstance(index, int) and index < 0:
                    raise NegativeIndexFault(f"array index {index} is negative", inst.loc)
                label = f"[{index}]"
            self._assign(inst.dst, base.sub(label), env)
        elif isinstance(inst, AddrOf):
            target = inst.var
            if target.is_global:
                self._assign(inst.dst, Loc(self.globals_obj, target.name), env)
            else:
                raise InterpreterError(f"address of register variable {target.name}", inst.loc)
        elif isinstance(inst, BinOp):
            self._assign(inst.dst, self._binop(inst, env), env)
        elif isinstance(inst, UnOp):
            value = self._use(inst.src, env, inst)
            self._assign(inst.dst, -value if inst.op == "neg" else ~value, env)
        elif isinstance(inst, Alloc):
            obj = self.new_object("stack", zeroed=inst.zeroed, loc=inst.loc)
            self._assign(inst.dst, Loc(obj), env)
        elif isinstance(inst, Malloc):
            if inst.may_fail and not self.allocator_policy(inst.uid):
                self._assign(inst.dst, 0, env)
            else:
                obj = self.new_object("heap", zeroed=inst.zeroed, loc=inst.loc)
                self._assign(inst.dst, Loc(obj), env)
        elif isinstance(inst, Free):
            value = self._operand(inst.ptr, env, inst)
            if isinstance(value, Loc):
                if value.obj.freed:
                    raise DoubleFreeFault(f"double free of obj{value.obj.oid}", inst.loc)
                value.obj.freed = True
            elif isinstance(value, int) and value != 0:
                raise InterpreterError("free of a non-pointer value", inst.loc)
            # free(NULL) is a no-op, as in C.
        elif isinstance(inst, MemSet):
            loc = self._as_loc(self._operand(inst.ptr, env, inst), inst.loc)
            loc.obj.zeroed = True
            loc.obj.fields.clear()
        elif isinstance(inst, LockOp):
            loc = self._as_loc(self._operand(inst.lock, env, inst), inst.loc)
            if inst.acquire:
                if loc.obj.lock_depth > 0:
                    raise DoubleLockFault("lock acquired twice", inst.loc)
                loc.obj.lock_depth = 1
            else:
                if loc.obj.lock_depth == 0:
                    raise DoubleLockFault("lock released while not held", inst.loc)
                loc.obj.lock_depth = 0
        elif isinstance(inst, Call):
            target = self.program.lookup(inst.callee)
            args = [self._operand(a, env, inst) for a in inst.args]
            if target is not None:
                result = self._call_function(target, args, inst.loc)
            else:
                result = self._call_external(inst.callee, args, inst.loc)
            if inst.dst is not None:
                self._assign(inst.dst, result, env)
        elif isinstance(inst, CallIndirect):
            fn_value = self._operand(inst.fn, env, inst)
            args = [self._operand(a, env, inst) for a in inst.args]
            result = self._call_function_pointer(fn_value, args, inst.loc)
            if inst.dst is not None:
                self._assign(inst.dst, result, env)
        else:
            raise InterpreterError(f"unhandled instruction {inst!r}", inst.loc)

    def _use(self, value: Value, env, inst) -> int:
        resolved = self._operand(value, env, inst)
        if resolved is UNDEF:
            raise UninitializedReadFault("use of uninitialized value", inst.loc)
        if isinstance(resolved, Loc):
            # Pointers in arithmetic degrade to a non-zero token.
            return 1
        return resolved

    def _binop(self, inst: BinOp, env) -> RuntimeValue:
        lhs = self._operand(inst.lhs, env, inst)
        rhs = self._operand(inst.rhs, env, inst)
        if lhs is UNDEF or rhs is UNDEF:
            raise UninitializedReadFault("use of uninitialized value", inst.loc)
        op = inst.op
        if op in ("eq", "ne"):
            equal = lhs == rhs
            return int(equal) if op == "eq" else int(not equal)
        lhs_int = 1 if isinstance(lhs, Loc) else lhs
        rhs_int = 1 if isinstance(rhs, Loc) else rhs
        if op in ("div", "mod") and rhs_int == 0:
            raise DivisionByZeroFault("division by zero", inst.loc)
        table = {
            "add": lambda a, b: a + b,
            "sub": lambda a, b: a - b,
            "mul": lambda a, b: a * b,
            "div": lambda a, b: int(a / b) if b else 0,
            "mod": lambda a, b: a - int(a / b) * b,
            "and": lambda a, b: a & b,
            "or": lambda a, b: a | b,
            "xor": lambda a, b: a ^ b,
            "shl": lambda a, b: a << (b & 63),
            "shr": lambda a, b: a >> (b & 63),
            "lt": lambda a, b: int(a < b),
            "le": lambda a, b: int(a <= b),
            "gt": lambda a, b: int(a > b),
            "ge": lambda a, b: int(a >= b),
            "land": lambda a, b: int(bool(a) and bool(b)),
            "lor": lambda a, b: int(bool(a) or bool(b)),
        }
        if op == "add" and isinstance(lhs, Loc):
            return lhs  # pointer arithmetic keeps the base object
        return table[op](lhs_int, rhs_int)

    def _call_external(self, name: str, args, at) -> RuntimeValue:
        handler = self.externals.get(name)
        if handler is not None:
            return handler(args)
        return 0

    def _call_function_pointer(self, fn_value, args, at) -> RuntimeValue:
        """Indirect calls: a Loc into the globals object whose cell holds a
        function name (set up when registrations are materialized) resolves;
        anything else is a no-op returning 0 (the static analyses' view)."""
        if isinstance(fn_value, str):
            func = self.program.lookup(fn_value)
            if func is not None:
                return self._call_function(func, args, at)
        return 0


def run_entry(
    program: Program,
    func_name: str,
    args: Sequence[RuntimeValue] = (),
    **machine_kwargs,
) -> Tuple[Optional[RuntimeValue], Optional[Fault], List[HeapObject]]:
    """Convenience wrapper: run one entry, catching faults.

    Returns (return value | None, fault | None, leaked heap objects).
    """
    machine = Machine(program, **machine_kwargs)
    try:
        result = machine.call(func_name, args)
    except Fault as fault:
        return None, fault, machine.leaked_objects()
    return result, None, machine.leaked_objects(result)
