"""Concrete IR interpreter + dynamic confirmation of static reports."""

from .faults import (
    DivisionByZeroFault,
    DoubleFreeFault,
    DoubleLockFault,
    Fault,
    InterpreterError,
    NegativeIndexFault,
    NullDereferenceFault,
    StepLimitExceeded,
    UninitializedReadFault,
    UseAfterFreeFault,
)
from .machine import Loc, Machine, UNDEF, run_entry
from .confirm import Confirmation, DynamicConfirmer

__all__ = [
    "DivisionByZeroFault", "DoubleFreeFault", "DoubleLockFault", "Fault",
    "InterpreterError", "NegativeIndexFault", "NullDereferenceFault",
    "StepLimitExceeded", "UninitializedReadFault", "UseAfterFreeFault",
    "Loc", "Machine", "UNDEF", "run_entry",
    "Confirmation", "DynamicConfirmer",
]
