"""Runtime faults raised by the IR interpreter.

Each fault maps to one of the bug kinds PATA detects statically, so a
static report can be *dynamically confirmed* by observing the matching
fault at the matching location (see :mod:`repro.interp.confirm`).
"""

from __future__ import annotations

from typing import Optional

from ..ir import SourceLoc
from ..typestate import BugKind


class Fault(Exception):
    """Base class of runtime faults."""

    kind: Optional[BugKind] = None

    def __init__(self, message: str, loc: Optional[SourceLoc] = None):
        super().__init__(f"{loc}: {message}" if loc is not None else message)
        self.message = message
        self.loc = loc


class NullDereferenceFault(Fault):
    """A NULL pointer was dereferenced."""

    kind = BugKind.NPD


class UninitializedReadFault(Fault):
    """An uninitialized cell or local was read."""

    kind = BugKind.UVA


class UseAfterFreeFault(Fault):
    """A freed object was accessed."""

    kind = None  # no static kind in the default checker set


class DoubleFreeFault(Fault):
    """An object was freed twice."""

    kind = None


class DivisionByZeroFault(Fault):
    """Integer division or modulo by zero."""

    kind = BugKind.DIV_BY_ZERO


class NegativeIndexFault(Fault):
    """An array was indexed with a negative value."""

    kind = BugKind.ARRAY_UNDERFLOW


class DoubleLockFault(Fault):
    """A lock was acquired while held, or released while free."""

    kind = BugKind.DOUBLE_LOCK


class StepLimitExceeded(Fault):
    """The interpreter's fuel ran out (infinite loop guard)."""


class InterpreterError(Fault):
    """Malformed program state (an interpreter bug, not a program bug)."""
