"""Value-flow graph construction (the Saber/SVF regime, §8.1).

Nodes are variable definitions; edges follow direct def-use chains
(copies, loads/stores matched through Andersen points-to, calls/returns).
Source-sink clients (:mod:`repro.vfg.reachability`) query which
definitions a malloc'd value can reach.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..ir import (
    Call,
    Free,
    Function,
    Load,
    Malloc,
    Move,
    Program,
    Ret,
    Store,
    Var,
)
from ..pointsto import AndersenPointsTo


class ValueFlowGraph:
    """Name-level value-flow edges over a whole program.

    ``edges[name]`` is the set of names the value of ``name`` flows into.
    Memory flow (``*p = x; y = *q``) is connected when ``p`` and ``q``
    may alias per the points-to analysis — inheriting its D1 blindness
    for interface parameters, as the paper describes.
    """

    def __init__(self, program: Program, points_to: Optional[AndersenPointsTo] = None):
        self.program = program
        self.points_to = points_to if points_to is not None else AndersenPointsTo(program).solve()
        self.edges: Dict[str, Set[str]] = defaultdict(set)
        self.malloc_sites: List[Malloc] = []
        self.free_sites: List[Free] = []
        #: functions owning either endpoint of a matched store→load pair
        #: — the memory-flow-relevant subset a sparse client (the P1.8
        #: flow tier) restricts its per-function dataflow to
        self.memory_functions: Set[str] = set()
        self._build()

    def _build(self) -> None:
        stores: List[Tuple[Store, str]] = []
        loads: List[Tuple[Load, str]] = []
        returns: Dict[str, Set[str]] = defaultdict(set)
        for func in self.program.functions():
            for block in func.blocks:
                for inst in block.instructions:
                    if isinstance(inst, Move) and isinstance(inst.src, Var):
                        self.edges[inst.src.name].add(inst.dst.name)
                    elif isinstance(inst, Store):
                        # const-src stores carry no value edge but are
                        # still memory defs for relevance matching
                        stores.append((inst, func.name))
                    elif isinstance(inst, Load):
                        loads.append((inst, func.name))
                    elif isinstance(inst, Malloc):
                        self.malloc_sites.append(inst)
                    elif isinstance(inst, Free):
                        self.free_sites.append(inst)
                    elif isinstance(inst, Call):
                        callee = self.program.lookup(inst.callee)
                        if callee is None:
                            continue
                        for param, arg in zip(callee.params, inst.args):
                            if isinstance(arg, Var):
                                self.edges[arg.name].add(param.name)
                        if inst.dst is not None:
                            returns[inst.callee].add(inst.dst.name)
                term = block.terminator
                if isinstance(term, Ret) and isinstance(term.value, Var):
                    for receiver in returns.get(func.name, ()):
                        self.edges[term.value.name].add(receiver)
        # Second pass for call sites seen before the callee's return.
        for func in self.program.functions():
            for block in func.blocks:
                term = block.terminator
                if isinstance(term, Ret) and isinstance(term.value, Var):
                    for receiver in returns.get(func.name, ()):
                        self.edges[term.value.name].add(receiver)
        # Memory def-use through may-alias pointers.  When the points-to
        # oracle partitions names into equivalence cells (Steensgaard's
        # MayAliasPartition exposes ``cell_of``), may-alias is cell
        # equality and the matching buckets to O(stores + loads); the
        # general oracle (Andersen) keeps the pairwise check.
        cell_of = getattr(self.points_to, "cell_of", None)
        if cell_of is not None:
            by_cell: Dict[object, List[Tuple[Load, str]]] = defaultdict(list)
            for load, owner in loads:
                # unseen names are vacuously singleton: key them by name
                # so only the self-alias pairing (same pointer) survives
                cell = cell_of(load.ptr.name)
                by_cell[cell if cell is not None else load.ptr.name].append((load, owner))
            for store, store_owner in stores:
                cell = cell_of(store.ptr.name)
                for load, load_owner in by_cell.get(
                    cell if cell is not None else store.ptr.name, ()
                ):
                    if isinstance(store.src, Var):
                        self.edges[store.src.name].add(load.dst.name)
                    self.memory_functions.add(store_owner)
                    self.memory_functions.add(load_owner)
        else:
            for store, store_owner in stores:
                for load, load_owner in loads:
                    if self.points_to.may_alias(store.ptr.name, load.ptr.name):
                        if isinstance(store.src, Var):
                            self.edges[store.src.name].add(load.dst.name)
                        self.memory_functions.add(store_owner)
                        self.memory_functions.add(load_owner)

    def reachable_from(self, name: str, limit: int = 100_000) -> Set[str]:
        seen: Set[str] = {name}
        work = [name]
        while work and len(seen) < limit:
            current = work.pop()
            for succ in self.edges.get(current, ()):
                if succ not in seen:
                    seen.add(succ)
                    work.append(succ)
        return seen

    def edge_count(self) -> int:
        return sum(len(v) for v in self.edges.values())
