"""Source-sink reachability on the value-flow graph: the Saber-style
memory-leak detector (§6, §8.1).

For every malloc site, the set of variable names its value flows into is
computed on the VFG; a leak is reported when some CFG path from the
allocation to an exit of the allocating function avoids every ``free`` of
a flowed-into name, and the value does not escape the function (stored
into memory, passed onward, or returned).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Optional, Set

from ..ir import (
    Branch,
    Call,
    Free,
    Function,
    Jump,
    Malloc,
    Move,
    Program,
    Ret,
    Store,
    Var,
)
from .builder import ValueFlowGraph


@dataclass
class LeakFinding:
    malloc: Malloc
    function: str
    message: str

    @property
    def file(self) -> str:
        return self.malloc.loc.filename

    @property
    def line(self) -> int:
        return self.malloc.loc.line


def escaping_malloc_sites(program: Program, vfg: Optional[ValueFlowGraph] = None) -> "frozenset":
    """Malloc-site uids whose objects escape their allocating function —
    the heap side of the race detector's *shared* universe.  Reuses the
    Saber detector's escape analysis (the same ``_escapes`` the leak
    check consults, so "shared" and "not leaked because it escaped"
    coincide by construction)."""
    return SaberLeakDetector(program, vfg).escaping_sites()


class SaberLeakDetector:
    """Value-flow source-sink leak detector; see the module docstring."""

    def __init__(self, program: Program, vfg: Optional[ValueFlowGraph] = None):
        self.program = program
        self.vfg = vfg if vfg is not None else ValueFlowGraph(program)

    def detect(self) -> List[LeakFinding]:
        findings: List[LeakFinding] = []
        for func in self.program.functions():
            for block in func.blocks:
                for inst in block.instructions:
                    if isinstance(inst, Malloc):
                        finding = self._check_site(func, block, inst)
                        if finding is not None:
                            findings.append(finding)
        return findings

    def _check_site(self, func: Function, malloc_block, malloc: Malloc) -> Optional[LeakFinding]:
        flow_set = self.vfg.reachable_from(malloc.dst.name)
        site_objs = {
            self._base_obj(obj)
            for obj in self.vfg.points_to.points_to(malloc.dst.name)
        }
        if self._escapes(func, flow_set, site_objs):
            return None
        blocked: Set[int] = set()
        for block in func.blocks:
            for inst in block.instructions:
                if isinstance(inst, Free) and inst.ptr.name in flow_set:
                    blocked.add(block.uid)
        # Saber's guards: a path taken because the allocation *failed*
        # (the NULL arm of a test of the pointer) carries nothing to free.
        from ..baselines.cppcheck_like import null_tests

        for ptr_name, null_block, _ in null_tests(func):
            if ptr_name in flow_set:
                blocked.add(null_block.uid)
        if self._exit_reachable_avoiding(func, malloc_block, blocked):
            return LeakFinding(
                malloc,
                func.name,
                f"memory allocated at {malloc.loc} may leak on a path without free",
            )
        return None

    @staticmethod
    def _base_obj(obj):
        """Strip ``("f", base, field)`` chains to the underlying
        allocation/global object."""
        while isinstance(obj, tuple) and obj and obj[0] == "f":
            obj = obj[1]
        return obj

    def _aliases_site(self, name: str, site_objs) -> bool:
        """Does ``name`` point (possibly through field addresses) into one
        of the allocation site's objects?"""
        if not site_objs:
            return False
        return any(
            self._base_obj(obj) in site_objs
            for obj in self.vfg.points_to.points_to(name)
        )

    def _escapes(self, func: Function, flow_set: Set[str], site_objs=frozenset()) -> bool:
        for block in func.blocks:
            for inst in block.instructions:
                if isinstance(inst, Store) and isinstance(inst.src, Var) and (
                    inst.src.name in flow_set
                    # Alias-aware: storing an *interior* pointer
                    # (``t = &p->hdr; *slot = t``) carries the object out
                    # even though ``t`` never appears in the VFG flow set
                    # (GEPs add no value-flow edge and pts(t) holds a
                    # field object, not the allocation itself).
                    or self._aliases_site(inst.src.name, site_objs)
                ):
                    return True
                if isinstance(inst, Move) and isinstance(inst.src, Var) and inst.src.name in flow_set and inst.dst.is_global:
                    return True
                if isinstance(inst, Call) and self.program.lookup(inst.callee) is None:
                    for arg in inst.args:
                        if isinstance(arg, Var) and arg.name in flow_set:
                            return True
            term = block.terminator
            if isinstance(term, Ret) and isinstance(term.value, Var) and term.value.name in flow_set:
                return True
        return False

    def escaping_sites(self) -> "frozenset":
        """Uids of the malloc instructions whose objects *escape* their
        allocating function per :meth:`_escapes` — stored into memory or
        a global, handed to an unknown external, or returned upward.
        These are the heap objects other entry functions can observe,
        which is what makes them *shared* for the race detector."""
        sites: Set[int] = set()
        for func in self.program.functions():
            for block in func.blocks:
                for inst in block.instructions:
                    if not isinstance(inst, Malloc):
                        continue
                    flow_set = self.vfg.reachable_from(inst.dst.name)
                    site_objs = {
                        self._base_obj(obj)
                        for obj in self.vfg.points_to.points_to(inst.dst.name)
                    }
                    if self._escapes(func, flow_set, site_objs):
                        sites.add(inst.uid)
        return frozenset(sites)

    @staticmethod
    def _exit_reachable_avoiding(func: Function, start_block, blocked: Set[int]) -> bool:
        """Is some Ret reachable from ``start_block`` without entering any
        block in ``blocked``?"""
        if start_block.uid in blocked:
            return False
        seen = {start_block.uid}
        work = deque([start_block])
        while work:
            block = work.popleft()
            term = block.terminator
            if isinstance(term, Ret):
                return True
            for succ in block.successors():
                if succ.uid not in seen and succ.uid not in blocked:
                    seen.add(succ.uid)
                    work.append(succ)
        return False
