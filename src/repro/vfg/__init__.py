"""Value-flow graph + source-sink reachability (the Saber regime)."""

from .builder import ValueFlowGraph
from .reachability import LeakFinding, SaberLeakDetector, escaping_malloc_sites

__all__ = ["ValueFlowGraph", "LeakFinding", "SaberLeakDetector", "escaping_malloc_sites"]
