"""Alias-aware taint analysis (user input → sensitive sinks).

A seventh typestate checker built on the same per-alias-set tracking as
Table 2's FSMs: sources are ``copy_from_user``-style intrinsics declared
in a :class:`TaintSpec`, sinks are array indexes, divisors, allocation
sizes and copy lengths, and sanitization is path-sensitive — discharged
by the stage-2 SMT validator rather than by an FSM transition.  See
:mod:`repro.taint.checker` for the full model.
"""

from .checker import TaintChecker
from .fsm import TAINT_FSM
from .spec import DEFAULT_TAINT_SPEC, TaintSpec

__all__ = [
    "DEFAULT_TAINT_SPEC",
    "TAINT_FSM",
    "TaintChecker",
    "TaintSpec",
]
