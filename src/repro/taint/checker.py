"""Alias-aware, path-sensitive taint checker.

Taint is a typestate like any other (Definition 3): the *tainted* mark
lives per alias set, so user input written through one name is seen
through every alias — ``copy_from_user(&r->len, ...)`` in a callee
taints ``q->len`` in the caller when ``q`` aliases ``r``, with no extra
dataflow machinery.

* **Sources** come from the :class:`~repro.taint.spec.TaintSpec`: calls
  whose return value is user input (``n = get_user_len()``) taint the
  destination's alias set; calls that fill an out-buffer
  (``copy_from_user(&chunk, ...)``) taint the alias set *behind* each
  pointer argument.
* **Propagation** is free for moves/loads in aware mode (alias-set
  identity); arithmetic results inherit taint from their operands.
* **Sinks** are array indexing, divisors, heap-allocation sizes and
  memset/memcpy lengths.  A sink use of a tainted set reports a
  :class:`~repro.typestate.manager.PossibleBug` whose
  ``extra_requirement`` states the *out-of-range* condition (``idx < 0``,
  ``div == 0``, ``size > max``).

Sanitization is deliberately **not** an FSM transition here: a range
check only helps on the paths it dominates, so it is discharged by
stage 2 — the validator conjoins the out-of-range atom with the path
constraints and drops the report iff the conjunction is UNSAT
(:mod:`repro.smt.translate`).  A checked path like ``if (len > 4096)
return;`` makes ``len > 4096`` unsatisfiable downstream; the unchecked
path keeps it satisfiable and the report survives.
"""

from __future__ import annotations

from ..ir import BinOp, PointerType, UnOp, Var
from ..presolve.events import EventKind
from ..typestate.events import (
    AllocEvent,
    AssignConstEvent,
    BugKind,
    CallReturnEvent,
    DivEvent,
    Event,
    ExternalCallEvent,
    IndexEvent,
    LoadEvent,
    MemInitEvent,
)
from ..typestate.manager import Checker, PossibleBug, TrackerContext
from .fsm import TAINT_FSM
from .spec import DEFAULT_TAINT_SPEC, TaintSpec

#: conservative trigger mask when a custom spec's source names escape the
#: global TAINT_SOURCE_HINTS: any externally-handled call could be a source.
_FALLBACK_TRIGGERS = EventKind.EXTERNAL_CALL | EventKind.CALL_RETURN


class TaintChecker(Checker):
    """Taint checker; see the module docstring."""

    name = "taint"
    kind = BugKind.TAINT
    fsm = TAINT_FSM
    relevant_events = (
        EventKind.TAINT_SOURCE | EventKind.EXTERNAL_CALL | EventKind.CALL_RETURN
        | EventKind.ASSIGN_CONST | EventKind.USE | EventKind.DEREF
        | EventKind.INDEX | EventKind.DIV | EventKind.ALLOC_HEAP | EventKind.MEM_INIT
    )
    sink_events = (
        EventKind.INDEX | EventKind.DIV | EventKind.ALLOC_HEAP | EventKind.MEM_INIT
    )
    handled_events = (
        ExternalCallEvent, CallReturnEvent, AssignConstEvent, LoadEvent,
        IndexEvent, DivEvent, AllocEvent, MemInitEvent,
    )

    def __init__(self, spec: TaintSpec = DEFAULT_TAINT_SPEC):
        self.spec = spec
        # Pruning soundness (see TaintSpec.covered_by_hints): the precise
        # TAINT_SOURCE trigger is only safe when the P1.5 scan marks every
        # call this spec treats as a source.
        if spec.covered_by_hints():
            self.trigger_events = EventKind.TAINT_SOURCE
        else:
            self.trigger_events = _FALLBACK_TRIGGERS

    # State values are ("ST", source_inst) / ("S0", None).

    def handle(self, event: Event, ctx: TrackerContext) -> None:
        if isinstance(event, ExternalCallEvent):
            self._handle_external_call(event, ctx)
        elif isinstance(event, CallReturnEvent):
            self._handle_call_return(event, ctx)
        elif isinstance(event, AssignConstEvent):
            self._handle_assign(event, ctx)
        elif isinstance(event, LoadEvent):
            self._handle_load(event, ctx)
        elif isinstance(event, IndexEvent):
            if isinstance(event.index, Var):
                self._sink(ctx, event, event.index, ("lt", 0),
                           "user-controlled index '{0}' may be out of range")
        elif isinstance(event, DivEvent):
            if isinstance(event.divisor, Var):
                self._sink(ctx, event, event.divisor, ("eq", 0),
                           "user-controlled divisor '{0}' may be zero")
        elif isinstance(event, AllocEvent):
            size = getattr(event.inst, "size", None)
            if event.heap and isinstance(size, Var):
                self._sink(ctx, event, size, ("gt", self.spec.max_alloc),
                           "user-controlled allocation size '{0}' is unbounded")
        elif isinstance(event, MemInitEvent):
            size = getattr(event.inst, "size", None)
            if isinstance(size, Var):
                self._sink(ctx, event, size, ("gt", self.spec.max_copy),
                           "user-controlled copy length '{0}' is unbounded")

    # -- sources -----------------------------------------------------------------

    def _handle_external_call(self, event: ExternalCallEvent, ctx: TrackerContext) -> None:
        if not self.spec.is_buffer_source(event.callee):
            return
        # Dispatched *before* the engine havocs the call (pre-call graph):
        # the pointee of ``&chunk`` is still chunk's own alias class, and
        # the pointee of ``&r->len`` is the field's value class — tainting
        # the node marks every alias at once.
        for arg in event.args:
            if not (isinstance(arg, Var) and isinstance(arg.type, PointerType)):
                continue
            if ctx.alias_aware and ctx.graph is not None:
                node = ctx.graph.deref_node(arg)
                if node is None:
                    # Nothing named the pointee yet; materialize it so a
                    # later load through any alias lands on the same class.
                    node = ctx.graph.handle_store_fresh(arg)
                ctx.set_key(self.name, node.uid, ("ST", event.inst),
                            fanout=max(1, len(node.vars)))
            else:
                # NA ablation: no pointee identity — track under a
                # pseudo-key and propagate only through syntactic loads.
                ctx.set_key(self.name, "*" + arg.name, ("ST", event.inst))

    def _handle_call_return(self, event: CallReturnEvent, ctx: TrackerContext) -> None:
        if self.spec.is_return_source(event.callee):
            ctx.set(self.name, event.dst, ("ST", event.inst))
        elif not ctx.alias_aware and self._state(ctx, event.dst) is not None:
            # Aware mode gets the strong update from the engine's detach;
            # name-keyed NA state must be cleared by hand.
            ctx.set(self.name, event.dst, ("S0", None))

    # -- propagation -------------------------------------------------------------

    def _handle_assign(self, event: AssignConstEvent, ctx: TrackerContext) -> None:
        inst = event.inst
        if isinstance(inst, BinOp):
            operands = (inst.lhs, inst.rhs)
        elif isinstance(inst, UnOp):
            operands = (inst.src,)
        else:
            operands = ()
        for operand in operands:
            if isinstance(operand, Var):
                state = self._state(ctx, operand)
                if state is not None:
                    ctx.set(self.name, event.var, state)
                    return
        if not ctx.alias_aware and self._state(ctx, event.var) is not None:
            ctx.set(self.name, event.var, ("S0", None))

    def _handle_load(self, event: LoadEvent, ctx: TrackerContext) -> None:
        if ctx.alias_aware:
            return  # the load joined dst to the pointee class already
        state = ctx.get_key(self.name, "*" + event.addr.name)
        if state is not None and state[0] == "ST":
            ctx.set(self.name, event.dst, state)
        elif self._state(ctx, event.dst) is not None:
            ctx.set(self.name, event.dst, ("S0", None))

    # -- sinks -------------------------------------------------------------------

    def _state(self, ctx: TrackerContext, var: Var):
        state = ctx.get(self.name, var)
        if state is not None and state[0] == "ST":
            return state
        return None

    def _sink(self, ctx: TrackerContext, event: Event, var: Var, atom, message: str) -> None:
        state = self._state(ctx, var)
        if state is None:
            return
        subject = var.display_name()
        op, const = atom
        bug = PossibleBug(
            kind=self.kind,
            checker=self.name,
            subject=subject,
            source=state[1] if state[1] is not None else event.inst,
            sink=event.inst,
            message=message.format(subject),
            alias_set=ctx.alias_names(var),
        )
        # Stage 2 must prove the out-of-range condition satisfiable under
        # the path constraints; a dominating range check makes it UNSAT
        # and discharges the report (path-sensitive sanitization).
        bug.extra_requirement = (op, var.name, const)
        ctx.report(bug)
        # The set stays tainted: every distinct sink of this flow reports
        # (dedup collapses same source/sink repeats, e.g. loop bodies).
