"""Source/sink specification for the taint checker.

A :class:`TaintSpec` names the user-input intrinsics (the
``copy_from_user`` family) by callee-name substrings, in two flavors:

* *return sources* — the call's return value is attacker-controlled
  (``n = get_user()``);
* *buffer sources* — the call fills the region behind one pointer
  argument with attacker-controlled bytes (``copy_from_user(&req, ...)``).

Sinks are structural (array indexing, divisors, allocation sizes, copy
lengths) and carry the threshold above which a tainted size is considered
out of range.  There is deliberately *no* sanitizer list: sanitization is
path-sensitive and discharged by the SMT layer — a report survives only
if the "tainted value out of range at the sink" atom is satisfiable under
the path constraints (see :mod:`repro.taint.checker`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..presolve.events import TAINT_SOURCE_HINTS


@dataclass(frozen=True)
class TaintSpec:
    """Which calls introduce taint, and the sink range thresholds."""

    #: callee-name substrings whose *return value* is tainted
    return_sources: Tuple[str, ...] = ("get_user", "read_user", "recv_from", "user_input")
    #: callee-name substrings that taint the region behind every pointer
    #: argument (the analysis is arity-agnostic: any pointer argument of a
    #: matching call may be an out-buffer)
    buffer_sources: Tuple[str, ...] = ("copy_from_user", "from_user")
    #: largest allocation size / copy length considered in range; a
    #: tainted size is reported when ``size > threshold`` is satisfiable
    max_alloc: int = 4096
    max_copy: int = 4096
    _source_hints: Tuple[str, ...] = field(default=TAINT_SOURCE_HINTS, repr=False)

    def is_return_source(self, callee: str) -> bool:
        return any(hint in callee for hint in self.return_sources)

    def is_buffer_source(self, callee: str) -> bool:
        return any(hint in callee for hint in self.buffer_sources)

    def is_source(self, callee: str) -> bool:
        return self.is_return_source(callee) or self.is_buffer_source(callee)

    def covered_by_hints(self) -> bool:
        """Whether every source this spec matches is also matched by the
        P1.5 scan's :data:`~repro.presolve.events.TAINT_SOURCE_HINTS`.

        Pruning soundness: the scan marks a call when some global hint is
        a substring of the callee; the checker arms when some spec hint
        is.  If every spec hint *contains* a global hint, substring
        transitivity guarantees scan ⊇ checker, so the checker may use
        the precise ``TAINT_SOURCE`` trigger mask.  Otherwise it must
        fall back to the conservative external-call mask.
        """
        return all(
            any(global_hint in spec_hint for global_hint in self._source_hints)
            for spec_hint in self.return_sources + self.buffer_sources
        )


DEFAULT_TAINT_SPEC = TaintSpec()
