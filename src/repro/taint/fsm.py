"""The taint typestate property as an FSM (Definition 2 shape).

One state per alias set, like every other checker: S0 (untainted) moves
to ST when a source call defines the set's value, and ST moves to the
error state STS when the set's value is consumed at a sensitive sink
(array index, divisor, allocation size, copy length).  ``sanitize``
models a definite in-range proof; the *path-sensitive* part of
sanitization is not an FSM input at all — it is the SMT discharge of the
out-of-range atom at validation time (:mod:`repro.taint.checker`).
"""

from ..typestate.fsm import make_fsm

TAINT_FSM = make_fsm(
    "FSM_TAINT",
    initial="S0",
    error="STS",
    transitions={
        ("S0", "taint"): "ST",
        ("ST", "sanitize"): "S0",
        ("ST", "sink_use"): "STS",
        # Post-report recovery: the set stays tainted so every later sink
        # of the same source→value flow reports too ("finds every
        # injected source→sink flow"); dedup collapses true repeats.
        ("STS", "taint"): "ST",
        ("STS", "sink_use"): "STS",
        ("STS", "sanitize"): "S0",
    },
)
