"""Semantics-preserving IR cleanup passes.

The mini-C lowering is deliberately naive (every condition becomes a
compare + branch, short-circuiting spawns blocks, dead blocks linger
after ``goto``).  These passes tidy the IR the way a -O0.5 compiler
would, which matters to the analyses: a constant branch folded to a jump
is one path instead of two, and unreachable blocks cost exploration
budget for nothing.

All passes preserve source locations and observable semantics, including
*fault* semantics: a constant division by zero is **not** folded away —
the checkers and the interpreter must still see it.

Enabled in the pipeline via ``AnalysisConfig.optimize_ir``; off by
default so measured numbers describe the unoptimized lowering.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .function import BasicBlock, Function, Module, Program
from .instructions import (
    BinOp,
    Branch,
    Jump,
    Move,
    Ret,
    UnOp,
)
from .values import Const, Value, Var


def fold_constants(func: Function) -> int:
    """Block-local constant propagation + arithmetic folding.

    Within one block, a ``Move(v, Const)`` makes later reads of ``v``
    (until any redefinition) read the constant; BinOp/UnOp over constants
    become constant Moves.  Division/modulo by a constant zero is left
    untouched (it is a bug the analyses must see).  Returns the number of
    rewritten instructions.
    """
    from ..smt.terms import _apply_op

    changed = 0
    for block in func.blocks:
        env: Dict[str, Const] = {}

        def resolve(value: Value) -> Value:
            if isinstance(value, Var):
                known = env.get(value.name)
                if known is not None and not value.is_global:
                    return known
            return value

        new_instructions = []
        for inst in block.instructions:
            if isinstance(inst, BinOp):
                lhs, rhs = resolve(inst.lhs), resolve(inst.rhs)
                if lhs is not inst.lhs or rhs is not inst.rhs:
                    inst.lhs, inst.rhs = lhs, rhs
                    changed += 1
                if (
                    isinstance(inst.lhs, Const)
                    and isinstance(inst.rhs, Const)
                    and not (inst.op in ("div", "mod") and inst.rhs.value == 0)
                ):
                    try:
                        value = _apply_op(inst.op, [inst.lhs.value, inst.rhs.value])
                    except ValueError:
                        value = None
                    if value is not None:
                        folded = Const(value, inst.dst.type)
                        replacement = Move(inst.dst, folded, inst.loc)
                        replacement.parent = block
                        new_instructions.append(replacement)
                        env[inst.dst.name] = folded
                        changed += 1
                        continue
                env.pop(inst.dst.name, None)
            elif isinstance(inst, UnOp):
                src = resolve(inst.src)
                if src is not inst.src:
                    inst.src = src
                    changed += 1
                if isinstance(inst.src, Const):
                    value = -inst.src.value if inst.op == "neg" else ~inst.src.value
                    folded = Const(value, inst.dst.type)
                    replacement = Move(inst.dst, folded, inst.loc)
                    replacement.parent = block
                    new_instructions.append(replacement)
                    env[inst.dst.name] = folded
                    changed += 1
                    continue
                env.pop(inst.dst.name, None)
            elif isinstance(inst, Move):
                src = resolve(inst.src)
                if src is not inst.src:
                    inst.src = src
                    changed += 1
                if isinstance(inst.src, Const) and not inst.dst.is_global:
                    env[inst.dst.name] = inst.src
                else:
                    env.pop(inst.dst.name, None)
            else:
                defined = inst.defined_var()
                if defined is not None:
                    env.pop(defined.name, None)
            new_instructions.append(inst)
        block.instructions = new_instructions
        # Terminators: fold constant branch conditions to jumps.
        term = block.terminator
        if isinstance(term, Branch):
            cond = resolve(term.cond)
            if isinstance(cond, Const):
                target = term.then_block if cond.value != 0 else term.else_block
                jump = Jump(target, term.loc)
                jump.parent = block
                block.terminator = jump
                changed += 1
    return changed


def remove_unreachable_blocks(func: Function) -> int:
    """Drop blocks not reachable from the entry.  Returns how many."""
    if func.is_declaration:
        return 0
    reachable = set()
    work = [func.entry]
    while work:
        block = work.pop()
        if block.uid in reachable:
            continue
        reachable.add(block.uid)
        work.extend(block.successors())
    removed = [b for b in func.blocks if b.uid not in reachable]
    if removed:
        func.blocks = [b for b in func.blocks if b.uid in reachable]
        for block in removed:
            func._block_names.pop(block.name, None)
    return len(removed)


def thread_jumps(func: Function) -> int:
    """Retarget edges that point at empty forwarding blocks
    (a block whose only content is ``br other``).  Returns the number of
    retargeted edges."""
    forward: Dict[int, BasicBlock] = {}
    for block in func.blocks:
        if not block.instructions and isinstance(block.terminator, Jump):
            forward[block.uid] = block.terminator.target

    def final_target(block: BasicBlock) -> BasicBlock:
        seen = set()
        while block.uid in forward and block.uid not in seen:
            seen.add(block.uid)
            block = forward[block.uid]
        return block

    changed = 0
    for block in func.blocks:
        term = block.terminator
        if isinstance(term, Jump):
            target = final_target(term.target)
            if target is not term.target:
                term.target = target
                changed += 1
        elif isinstance(term, Branch):
            then_target = final_target(term.then_block)
            else_target = final_target(term.else_block)
            if then_target is not term.then_block:
                term.then_block = then_target
                changed += 1
            if else_target is not term.else_block:
                term.else_block = else_target
                changed += 1
    return changed


def optimize_function(func: Function, max_rounds: int = 4) -> Dict[str, int]:
    """Run the passes to a (bounded) fixpoint; returns per-pass counts."""
    totals = {"folded": 0, "threaded": 0, "removed_blocks": 0}
    for _ in range(max_rounds):
        folded = fold_constants(func)
        threaded = thread_jumps(func)
        removed = remove_unreachable_blocks(func)
        totals["folded"] += folded
        totals["threaded"] += threaded
        totals["removed_blocks"] += removed
        if folded == threaded == removed == 0:
            break
    return totals


def optimize_module(module: Module) -> Dict[str, int]:
    """Optimize every defined function of a module; returns summed counts."""
    totals = {"folded": 0, "threaded": 0, "removed_blocks": 0}
    for func in module.defined_functions():
        for key, count in optimize_function(func).items():
            totals[key] += count
    return totals


def optimize_program(program: Program) -> Dict[str, int]:
    """Optimize every module of a program; returns summed counts."""
    totals = {"folded": 0, "threaded": 0, "removed_blocks": 0}
    for module in program.modules:
        for key, count in optimize_module(module).items():
            totals[key] += count
    return totals
