"""Textual rendering of IR modules/functions, for debugging and tests.

Two families of renderers live here:

* ``format_*`` — the debugging forms, unchanged since the IR landed;
* ``canonical_*`` — **byte-deterministic** forms used as content-address
  keys by the incremental cache (:mod:`repro.incremental`).  They extend
  the debugging forms with source locations (a cached bug report renders
  ``file:line``, so two functions that differ only in line numbers must
  fingerprint differently) and sort every container whose order is not
  semantically meaningful (structs, globals) by name, so the output is
  identical across processes, hash seeds, and dict insertion orders.
  Blocks, instructions, struct fields, and registrations keep their
  declared order — that order *is* semantics.
"""

from __future__ import annotations

from .function import BasicBlock, Function, Module


def format_block(block: BasicBlock) -> str:
    """Render one basic block as text."""
    lines = [f"{block.name}:"]
    for inst in block.instructions:
        lines.append(f"  {inst}")
    if block.terminator is not None:
        lines.append(f"  {block.terminator}")
    return "\n".join(lines)


def format_function(func: Function) -> str:
    """Render a function definition (or declaration) as text."""
    params = ", ".join(f"{p.type} {p}" for p in func.params)
    flags = []
    if func.is_static:
        flags.append("static")
    if func.is_interface:
        flags.append("interface")
    prefix = (" ".join(flags) + " ") if flags else ""
    header = f"{prefix}define {func.return_type} @{func.name}({params}) {{"
    if func.is_declaration:
        return f"{prefix}declare {func.return_type} @{func.name}({params})"
    body = "\n".join(format_block(b) for b in func.blocks)
    return f"{header}\n{body}\n}}"


def canonical_function_print(func: Function) -> str:
    """Byte-deterministic rendering of one function, locations included.

    This is the incremental cache's per-function content key: any change
    that can alter analysis results or report rendering — instruction
    stream, types, flags (``static``/``interface``), or source positions
    — must change this string.  Conversely it must be bit-identical for
    an unchanged function regardless of process, ``PYTHONHASHSEED``, or
    compile order (uids are deliberately excluded: they are
    process-local)."""
    params = ", ".join(f"{p.type} {p}" for p in func.params)
    flags = []
    if func.is_static:
        flags.append("static")
    if func.is_interface:
        flags.append("interface")
    if func.variadic:
        flags.append("variadic")
    prefix = (" ".join(flags) + " ") if flags else ""
    lines = [
        f"{prefix}define {func.return_type} @{func.name}({params})"
        f" ; {func.filename}:{func.line}"
    ]
    for block in func.blocks:
        lines.append(f"{block.name}:")
        for inst in block.instructions:
            lines.append(f"  {inst} ; {inst.loc}")
        if block.terminator is not None:
            term = block.terminator
            lines.append(f"  {term} ; {term.loc}")
    return "\n".join(lines)


def canonical_module_environment(module: Module) -> str:
    """Byte-deterministic rendering of a module's non-function contents:
    struct layouts, globals, and interface registrations.  Structs and
    globals sort by name (their dict order is an artifact of declaration
    interleaving); struct *fields* and registrations keep declared order
    (field order is layout, registration order feeds indirect-target
    resolution)."""
    parts = [f"module {module.name}"]
    for name in sorted(module.structs):
        struct = module.structs[name]
        fields = "; ".join(f"{ty} {fname}" for fname, ty in struct.fields.items())
        parts.append(f"struct {name} {{ {fields} }}")
    for name in sorted(module.globals):
        parts.append(f"global {module.globals[name].type} {name}")
    for reg in module.registrations:
        parts.append(
            f"register .{reg.field} = {reg.function} in {reg.struct_var}"
            f" ({reg.struct_type.name if reg.struct_type is not None else '?'})"
        )
    return "\n".join(parts)


def canonical_program_print(program) -> str:
    """Byte-deterministic rendering of a whole program: module
    environments plus every function, modules sorted by name.  Used by
    the printer-determinism regression test; the cache fingerprints
    functions individually rather than hashing this."""
    chunks = []
    for module in sorted(program.modules, key=lambda m: m.name):
        chunks.append(canonical_module_environment(module))
        for func in module.functions.values():
            if not func.is_declaration:
                chunks.append(canonical_function_print(func))
    return "\n\n".join(chunks)


def format_module(module: Module) -> str:
    """Render a whole module: structs, globals, registrations, functions."""
    parts = [f"; module {module.name}"]
    for struct in module.structs.values():
        fields = "; ".join(f"{ty} {name}" for name, ty in struct.fields.items())
        parts.append(f"{struct} {{ {fields} }}")
    for g in module.globals.values():
        parts.append(f"global {g.type} {g.name}")
    for reg in module.registrations:
        parts.append(f"; register {reg}")
    for func in module.functions.values():
        parts.append(format_function(func))
    return "\n\n".join(parts)
