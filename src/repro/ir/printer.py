"""Textual rendering of IR modules/functions, for debugging and tests."""

from __future__ import annotations

from .function import BasicBlock, Function, Module


def format_block(block: BasicBlock) -> str:
    """Render one basic block as text."""
    lines = [f"{block.name}:"]
    for inst in block.instructions:
        lines.append(f"  {inst}")
    if block.terminator is not None:
        lines.append(f"  {block.terminator}")
    return "\n".join(lines)


def format_function(func: Function) -> str:
    """Render a function definition (or declaration) as text."""
    params = ", ".join(f"{p.type} {p}" for p in func.params)
    flags = []
    if func.is_static:
        flags.append("static")
    if func.is_interface:
        flags.append("interface")
    prefix = (" ".join(flags) + " ") if flags else ""
    header = f"{prefix}define {func.return_type} @{func.name}({params}) {{"
    if func.is_declaration:
        return f"{prefix}declare {func.return_type} @{func.name}({params})"
    body = "\n".join(format_block(b) for b in func.blocks)
    return f"{header}\n{body}\n}}"


def format_module(module: Module) -> str:
    """Render a whole module: structs, globals, registrations, functions."""
    parts = [f"; module {module.name}"]
    for struct in module.structs.values():
        fields = "; ".join(f"{ty} {name}" for name, ty in struct.fields.items())
        parts.append(f"{struct} {{ {fields} }}")
    for g in module.globals.values():
        parts.append(f"global {g.type} {g.name}")
    for reg in module.registrations:
        parts.append(f"; register {reg}")
    for func in module.functions.values():
        parts.append(format_function(func))
    return "\n\n".join(parts)
