"""IR well-formedness checks.

The verifier enforces the invariants that downstream analyses rely on:
every reachable block is terminated, branch targets belong to the same
function, defined variables are unique per instruction (the IR is not SSA
— source variables may be redefined — but each *temporary* must have a
single definition), and terminator successors are consistent.
"""

from __future__ import annotations

from typing import List

from ..errors import IRError
from .function import Function, Module, Program
from .instructions import Branch, Jump, LockOp, Ret, Unreachable
from .types import PointerType
from .values import Var


def verify_function(func: Function) -> List[str]:
    """Return a list of problems (empty when the function is well-formed)."""
    problems: List[str] = []
    if func.is_declaration:
        return problems
    block_set = set(id(b) for b in func.blocks)
    temp_defs = {}
    for block in func.blocks:
        if block.terminator is None:
            problems.append(f"{func.name}: block {block.name} lacks a terminator")
            continue
        for succ in block.successors():
            if id(succ) not in block_set:
                problems.append(
                    f"{func.name}: block {block.name} branches to foreign block {succ.name}"
                )
        term = block.terminator
        if not isinstance(term, (Branch, Jump, Ret, Unreachable)):
            problems.append(f"{func.name}: block {block.name} has unknown terminator {term!r}")
        for inst in block.instructions:
            if isinstance(inst, LockOp):
                # Lock intrinsics: exactly one operand, and it must be a
                # pointer-typed variable — the lockset checkers key their
                # state on the lock *object*, so a by-value or constant
                # operand could never alias across functions.
                ops = inst.operands()
                if len(ops) != 1:
                    problems.append(
                        f"{func.name}: {inst.api} expects exactly one lock operand, got {len(ops)}"
                    )
                if not isinstance(inst.lock, Var):
                    problems.append(
                        f"{func.name}: {inst.api} lock operand must be a variable, got {inst.lock!r}"
                    )
                elif not isinstance(inst.lock.type, PointerType):
                    problems.append(
                        f"{func.name}: {inst.api} lock operand "
                        f"'{inst.lock.display_name()}' must be pointer-typed, got {inst.lock.type}"
                    )
            dst = inst.defined_var()
            if dst is not None and dst.name.startswith("%"):
                prev = temp_defs.get(dst.name)
                if prev is not None and prev is not inst:
                    problems.append(
                        f"{func.name}: temporary {dst.name} defined more than once"
                    )
                temp_defs[dst.name] = inst
    return problems


def verify_module(module: Module) -> List[str]:
    """Verify every function of a module; returns the list of problems."""
    problems: List[str] = []
    for func in module.functions.values():
        problems.extend(verify_function(func))
    for reg in module.registrations:
        if reg.function not in module.functions:
            # Cross-module registrations are resolved at Program level; only
            # flag registrations that cannot resolve anywhere later.
            continue
    return problems


def verify_program(program: Program) -> List[str]:
    """Verify every module of a program; returns the list of problems."""
    problems: List[str] = []
    for module in program.modules:
        problems.extend(verify_module(module))
    return problems


def assert_valid(obj) -> None:
    """Raise :class:`IRError` when the IR object is malformed."""
    if isinstance(obj, Function):
        problems = verify_function(obj)
    elif isinstance(obj, Module):
        problems = verify_module(obj)
    elif isinstance(obj, Program):
        problems = verify_program(obj)
    else:
        raise TypeError(f"cannot verify {type(obj).__name__}")
    if problems:
        raise IRError("; ".join(problems))
