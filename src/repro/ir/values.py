"""Values (operands) of the repro IR: virtual registers and constants.

PATA's alias analysis identifies *variables*; in the IR a variable is a
:class:`Var` — either a source-level local/parameter/global or a compiler
temporary introduced by lowering.  Constants carry a Python int payload;
the null pointer is the pointer-typed constant 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .types import IntType, PointerType, Type, VOID_PTR


@dataclass(frozen=True)
class SourceLoc:
    """A source position attached to instructions for bug reports."""

    filename: str = "<ir>"
    line: int = 0

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}"


UNKNOWN_LOC = SourceLoc()


class Value:
    """Base class for IR operands."""

    type: Type


@dataclass(frozen=True)
class Var(Value):
    """A named virtual register.

    ``name`` is unique within a function (the builder enforces this), and
    globals are prefixed with ``@``.  ``source_name`` preserves the name the
    user wrote, for readable reports; temporaries have ``source_name=None``.
    """

    name: str
    type: Type = field(default_factory=lambda: IntType(32))
    source_name: Optional[str] = None
    is_global: bool = False
    #: True for global aggregates (structs/arrays): the Var *is* the
    #: aggregate's address, not a pointer-valued cell.
    is_aggregate: bool = False

    def __str__(self) -> str:
        return self.name

    def display_name(self) -> str:
        return self.source_name or self.name


@dataclass(frozen=True)
class Const(Value):
    """An integer (or pointer) constant."""

    value: int
    type: Type = field(default_factory=lambda: IntType(32))

    def __str__(self) -> str:
        if self.type.is_pointer() and self.value == 0:
            return "null"
        return str(self.value)

    @property
    def is_null(self) -> bool:
        return self.type.is_pointer() and self.value == 0


NULL = Const(0, VOID_PTR)


def const_int(value: int, width: int = 32) -> Const:
    """An integer constant of the given bit width."""
    return Const(value, IntType(width))


def is_null_const(value: Value) -> bool:
    """True for the null-pointer constant (any pointer type, payload 0)."""
    return isinstance(value, Const) and isinstance(value.type, PointerType) and value.value == 0
