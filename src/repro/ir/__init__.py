"""The repro IR: an LLVM-flavoured register IR tailored to PATA's needs.

Public surface re-exported here; see the submodules for details:

- :mod:`repro.ir.types` — type system
- :mod:`repro.ir.values` — operands (:class:`Var`, :class:`Const`)
- :mod:`repro.ir.instructions` — instruction set and terminators
- :mod:`repro.ir.function` — blocks, functions, modules, programs
- :mod:`repro.ir.builder` — :class:`IRBuilder`
- :mod:`repro.ir.printer` / :mod:`repro.ir.verify`
"""

from .types import (
    ArrayType,
    FunctionType,
    I8,
    I64,
    INT,
    IntType,
    PointerType,
    StructType,
    Type,
    VOID,
    VOID_PTR,
    VoidType,
    pointer_to,
)
from .values import NULL, Const, SourceLoc, UNKNOWN_LOC, Value, Var, const_int, is_null_const
from .instructions import (
    AddrOf,
    Alloc,
    BinOp,
    Branch,
    Call,
    CallIndirect,
    CMP_OPS,
    DeclLocal,
    Free,
    Gep,
    Instruction,
    Jump,
    Load,
    LockOp,
    Malloc,
    MemSet,
    Move,
    Ret,
    Store,
    Terminator,
    UnOp,
    Unreachable,
)
from .function import BasicBlock, Function, InterfaceRegistration, Module, Program
from .builder import IRBuilder
from .printer import (
    canonical_function_print,
    canonical_module_environment,
    canonical_program_print,
    format_block,
    format_function,
    format_module,
)
from .verify import assert_valid, verify_function, verify_module, verify_program
from .passes import (
    fold_constants,
    optimize_function,
    optimize_module,
    optimize_program,
    remove_unreachable_blocks,
    thread_jumps,
)

__all__ = [
    "ArrayType", "FunctionType", "I8", "I64", "INT", "IntType", "PointerType",
    "StructType", "Type", "VOID", "VOID_PTR", "VoidType", "pointer_to",
    "NULL", "Const", "SourceLoc", "UNKNOWN_LOC", "Value", "Var", "const_int",
    "is_null_const",
    "AddrOf", "Alloc", "BinOp", "Branch", "Call", "CallIndirect", "CMP_OPS", "DeclLocal",
    "Free", "Gep", "Instruction", "Jump", "Load", "LockOp", "Malloc", "MemSet",
    "Move", "Ret", "Store", "Terminator", "UnOp", "Unreachable",
    "BasicBlock", "Function", "InterfaceRegistration", "Module", "Program",
    "IRBuilder",
    "format_block", "format_function", "format_module",
    "canonical_function_print", "canonical_module_environment", "canonical_program_print",
    "assert_valid", "verify_function", "verify_module", "verify_program",
    "fold_constants", "optimize_function", "optimize_module",
    "optimize_program", "remove_unreachable_blocks", "thread_jumps",
]
