"""Type system for the repro IR.

The IR is a small, LLVM-flavoured register machine.  Its type system only
needs to be rich enough to express what PATA's analyses consume: integers,
pointers, named structs with ordered fields, fixed arrays, and functions.

Types are immutable and compared structurally (except structs, which are
nominal, as in C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


class Type:
    """Base class for all IR types."""

    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    def is_struct(self) -> bool:
        return isinstance(self, StructType)

    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    def is_void(self) -> bool:
        return isinstance(self, VoidType)


@dataclass(frozen=True)
class VoidType(Type):
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(Type):
    """An integer of a given bit width (chars/bools/enums all map here)."""

    width: int = 32

    def __str__(self) -> str:
        return f"i{self.width}"


@dataclass(frozen=True)
class PointerType(Type):
    """Pointer to ``pointee``.  ``pointee`` may be None for opaque pointers
    (e.g. ``void *``), which the alias analysis treats like any other
    pointer — access paths do not need pointee types."""

    pointee: Optional[Type] = None

    def __str__(self) -> str:
        return f"{self.pointee or 'void'}*"


@dataclass(frozen=True)
class ArrayType(Type):
    element: Type = field(default_factory=IntType)
    length: int = 0

    def __str__(self) -> str:
        return f"[{self.length} x {self.element}]"


class StructType(Type):
    """A nominal struct type with ordered named fields.

    Structs are created empty and completed later so that self-referential
    types (``struct list { struct list *next; }``) can be expressed.  Two
    struct types are equal iff they have the same name (nominal typing).
    """

    def __init__(self, name: str):
        self.name = name
        self.fields: Dict[str, Type] = {}
        self._complete = False

    def set_fields(self, fields: Dict[str, Type]) -> None:
        if self._complete:
            raise ValueError(f"struct {self.name} already completed")
        self.fields = dict(fields)
        self._complete = True

    @property
    def is_complete(self) -> bool:
        return self._complete

    def field_names(self) -> Tuple[str, ...]:
        return tuple(self.fields)

    def field_type(self, name: str) -> Type:
        return self.fields[name]

    def has_field(self, name: str) -> bool:
        return name in self.fields

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StructType) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("struct", self.name))

    def __str__(self) -> str:
        return f"struct {self.name}"

    def __repr__(self) -> str:
        return f"StructType({self.name!r}, fields={list(self.fields)})"


@dataclass(frozen=True)
class FunctionType(Type):
    return_type: Type = field(default_factory=VoidType)
    param_types: Tuple[Type, ...] = ()
    variadic: bool = False

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.param_types)
        if self.variadic:
            params = params + ", ..." if params else "..."
        return f"{self.return_type} ({params})"


VOID = VoidType()
INT = IntType(32)
I64 = IntType(64)
I8 = IntType(8)
VOID_PTR = PointerType(None)


def pointer_to(ty: Type) -> PointerType:
    """Convenience constructor mirroring LLVM's ``Type::getPointerTo``."""
    return PointerType(ty)
