"""Instruction set of the repro IR.

The set mirrors the LLVM subset PATA consumes (§3.1 of the paper): MOVE,
STORE, LOAD and GEP drive the alias analysis; CALL/RET provide
inter-procedural MOVEs; ALLOC/MALLOC/FREE are the allocation events the
typestate checkers watch; BINOP/UNOP feed branch conditions into the SMT
translation (Table 3).  Control flow lives in block *terminators*
(:class:`Jump`, :class:`Branch`, :class:`Ret`), not in the instruction list.

Every instruction records a :class:`~repro.ir.values.SourceLoc` so bug
reports point at mini-C source lines.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

from .values import Const, SourceLoc, UNKNOWN_LOC, Value, Var

# Binary operators.  Comparison operators produce an i32 0/1 value; the
# lowering always routes branch conditions through a comparison.
ARITH_OPS = ("add", "sub", "mul", "div", "mod", "and", "or", "xor", "shl", "shr")
CMP_OPS = ("eq", "ne", "lt", "le", "gt", "ge")
LOGIC_OPS = ("land", "lor")  # only produced for non-short-circuit contexts
BIN_OPS = ARITH_OPS + CMP_OPS + LOGIC_OPS

_ids = itertools.count(1)


class Instruction:
    """Base class for non-terminator instructions.

    ``uid`` is a process-unique id used for path membership checks and
    bug deduplication keys.
    """

    __slots__ = ("uid", "loc", "parent")

    def __init__(self, loc: SourceLoc = UNKNOWN_LOC):
        self.uid = next(_ids)
        self.loc = loc
        self.parent = None  # set by BasicBlock.append

    def operands(self) -> Tuple[Value, ...]:
        return ()

    def defined_var(self) -> Optional[Var]:
        """The virtual register this instruction defines, if any."""
        return None

    def __repr__(self) -> str:
        return f"<{self}>"


class Move(Instruction):
    """``dst = src`` — the MOVE of Fig. 5."""

    __slots__ = ("dst", "src")

    def __init__(self, dst: Var, src: Value, loc: SourceLoc = UNKNOWN_LOC):
        super().__init__(loc)
        self.dst = dst
        self.src = src

    def operands(self):
        return (self.src,)

    def defined_var(self):
        return self.dst

    def __str__(self):
        return f"{self.dst} = {self.src}"


class Load(Instruction):
    """``dst = *ptr`` — the LOAD of Fig. 5."""

    __slots__ = ("dst", "ptr")

    def __init__(self, dst: Var, ptr: Var, loc: SourceLoc = UNKNOWN_LOC):
        super().__init__(loc)
        self.dst = dst
        self.ptr = ptr

    def operands(self):
        return (self.ptr,)

    def defined_var(self):
        return self.dst

    def __str__(self):
        return f"{self.dst} = *{self.ptr}"


class Store(Instruction):
    """``*ptr = src`` — the STORE of Fig. 5."""

    __slots__ = ("ptr", "src")

    def __init__(self, ptr: Var, src: Value, loc: SourceLoc = UNKNOWN_LOC):
        super().__init__(loc)
        self.ptr = ptr
        self.src = src

    def operands(self):
        return (self.ptr, self.src)

    def __str__(self):
        return f"*{self.ptr} = {self.src}"


class Gep(Instruction):
    """``dst = &base->field`` — the GEP of Fig. 5 (field-sensitive).

    Array accesses are encoded as GEPs whose field label is ``[k]`` for a
    constant index k and ``[v]`` for a non-constant index variable ``v``
    (PATA is array-insensitive for non-constant indexes, §5.2).
    ``index`` carries the index operand for the array-underflow checker.
    """

    __slots__ = ("dst", "base", "field", "index")

    def __init__(
        self,
        dst: Var,
        base: Var,
        field: str,
        index: Optional[Value] = None,
        loc: SourceLoc = UNKNOWN_LOC,
    ):
        super().__init__(loc)
        self.dst = dst
        self.base = base
        self.field = field
        self.index = index

    def operands(self):
        return (self.base,) if self.index is None else (self.base, self.index)

    def defined_var(self):
        return self.dst

    def __str__(self):
        return f"{self.dst} = &{self.base}->{self.field}"


class AddrOf(Instruction):
    """``dst = &var`` — address of a local/global.

    For the alias graph this behaves like ``*dst = var`` (a STORE edge)
    without emitting a store event to the checkers.
    """

    __slots__ = ("dst", "var")

    def __init__(self, dst: Var, var: Var, loc: SourceLoc = UNKNOWN_LOC):
        super().__init__(loc)
        self.dst = dst
        self.var = var

    def operands(self):
        return (self.var,)

    def defined_var(self):
        return self.dst

    def __str__(self):
        return f"{self.dst} = &{self.var}"


class BinOp(Instruction):
    """``dst = lhs op rhs``."""

    __slots__ = ("dst", "op", "lhs", "rhs")

    def __init__(self, dst: Var, op: str, lhs: Value, rhs: Value, loc: SourceLoc = UNKNOWN_LOC):
        if op not in BIN_OPS:
            raise ValueError(f"unknown binary op {op!r}")
        super().__init__(loc)
        self.dst = dst
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def operands(self):
        return (self.lhs, self.rhs)

    def defined_var(self):
        return self.dst

    @property
    def is_comparison(self) -> bool:
        return self.op in CMP_OPS

    def __str__(self):
        return f"{self.dst} = {self.op} {self.lhs}, {self.rhs}"


class UnOp(Instruction):
    """``dst = op src`` with op in {neg, not, lnot}."""

    __slots__ = ("dst", "op", "src")

    def __init__(self, dst: Var, op: str, src: Value, loc: SourceLoc = UNKNOWN_LOC):
        if op not in ("neg", "not", "lnot"):
            raise ValueError(f"unknown unary op {op!r}")
        super().__init__(loc)
        self.dst = dst
        self.op = op
        self.src = src

    def operands(self):
        return (self.src,)

    def defined_var(self):
        return self.dst

    def __str__(self):
        return f"{self.dst} = {self.op} {self.src}"


class Call(Instruction):
    """``dst = callee(args...)`` — direct call by function name.

    Indirect (function-pointer) calls use :class:`CallIndirect`; PATA does
    not follow those (§7), but they still appear in the IR so that the
    unsoundness is the analysis' choice, not the IR's.
    """

    __slots__ = ("dst", "callee", "args")

    def __init__(
        self,
        dst: Optional[Var],
        callee: str,
        args: Sequence[Value],
        loc: SourceLoc = UNKNOWN_LOC,
    ):
        super().__init__(loc)
        self.dst = dst
        self.callee = callee
        self.args: List[Value] = list(args)

    def operands(self):
        return tuple(self.args)

    def defined_var(self):
        return self.dst

    def __str__(self):
        args = ", ".join(str(a) for a in self.args)
        prefix = f"{self.dst} = " if self.dst is not None else ""
        return f"{prefix}call {self.callee}({args})"


class CallIndirect(Instruction):
    """``dst = (*fn)(args...)`` — call through a function pointer."""

    __slots__ = ("dst", "fn", "args")

    def __init__(
        self,
        dst: Optional[Var],
        fn: Var,
        args: Sequence[Value],
        loc: SourceLoc = UNKNOWN_LOC,
    ):
        super().__init__(loc)
        self.dst = dst
        self.fn = fn
        self.args: List[Value] = list(args)

    def operands(self):
        return (self.fn, *self.args)

    def defined_var(self):
        return self.dst

    def __str__(self):
        args = ", ".join(str(a) for a in self.args)
        prefix = f"{self.dst} = " if self.dst is not None else ""
        return f"{prefix}icall (*{self.fn})({args})"


class Alloc(Instruction):
    """``dst = alloca ty`` — address of a fresh *uninitialized* stack slot.

    Emitted for address-taken locals and for aggregate locals; scalar
    locals stay in registers.  The UVA checker treats this as the
    ``alloc`` event of Table 2.
    """

    __slots__ = ("dst", "allocated_type", "zeroed")

    def __init__(self, dst: Var, allocated_type, zeroed: bool = False, loc: SourceLoc = UNKNOWN_LOC):
        super().__init__(loc)
        self.dst = dst
        self.allocated_type = allocated_type
        self.zeroed = zeroed

    def defined_var(self):
        return self.dst

    def __str__(self):
        z = " zeroed" if self.zeroed else ""
        return f"{self.dst} = alloca {self.allocated_type}{z}"


class DeclLocal(Instruction):
    """Marks the declaration of an *uninitialized scalar local* kept in a
    register.  Emits no runtime effect; it is the ``alloc`` event of the
    UVA FSM (Table 2) for register-allocated locals."""

    __slots__ = ("var",)

    def __init__(self, var: Var, loc: SourceLoc = UNKNOWN_LOC):
        super().__init__(loc)
        self.var = var

    def __str__(self):
        return f"decl {self.var}"


class Malloc(Instruction):
    """``dst = malloc(size)`` — heap allocation.

    ``zeroed`` is True for calloc/kzalloc-style allocators (the object is
    initialized); ``may_fail`` is True when the allocator can return NULL.
    """

    __slots__ = ("dst", "size", "zeroed", "may_fail", "allocator")

    def __init__(
        self,
        dst: Var,
        size: Value,
        zeroed: bool = False,
        may_fail: bool = True,
        allocator: str = "malloc",
        loc: SourceLoc = UNKNOWN_LOC,
    ):
        super().__init__(loc)
        self.dst = dst
        self.size = size
        self.zeroed = zeroed
        self.may_fail = may_fail
        self.allocator = allocator

    def operands(self):
        return (self.size,)

    def defined_var(self):
        return self.dst

    def __str__(self):
        return f"{self.dst} = {self.allocator}({self.size})"


class Free(Instruction):
    """``free(ptr)``."""

    __slots__ = ("ptr", "deallocator")

    def __init__(self, ptr: Var, deallocator: str = "free", loc: SourceLoc = UNKNOWN_LOC):
        super().__init__(loc)
        self.ptr = ptr
        self.deallocator = deallocator

    def operands(self):
        return (self.ptr,)

    def __str__(self):
        return f"{self.deallocator}({self.ptr})"


class MemSet(Instruction):
    """``memset(ptr, value, size)`` — initializes the pointed-to region."""

    __slots__ = ("ptr", "value", "size")

    def __init__(self, ptr: Var, value: Value, size: Value, loc: SourceLoc = UNKNOWN_LOC):
        super().__init__(loc)
        self.ptr = ptr
        self.value = value
        self.size = size

    def operands(self):
        return (self.ptr, self.value, self.size)

    def __str__(self):
        return f"memset({self.ptr}, {self.value}, {self.size})"


class LockOp(Instruction):
    """``lock(l)`` / ``unlock(l)`` for the double-lock checker (§5.5)."""

    __slots__ = ("lock", "acquire", "api")

    def __init__(self, lock: Var, acquire: bool, api: str = "spin_lock", loc: SourceLoc = UNKNOWN_LOC):
        super().__init__(loc)
        self.lock = lock
        self.acquire = acquire
        self.api = api

    def operands(self):
        return (self.lock,)

    def __str__(self):
        return f"{self.api}({self.lock})"


# --------------------------------------------------------------------------
# Terminators
# --------------------------------------------------------------------------


class Terminator:
    """Base class of block terminators."""

    __slots__ = ("uid", "loc", "parent")

    def __init__(self, loc: SourceLoc = UNKNOWN_LOC):
        self.uid = next(_ids)
        self.loc = loc
        self.parent = None

    def successors(self) -> Tuple["BasicBlock", ...]:  # noqa: F821
        return ()


class Jump(Terminator):
    """Unconditional branch to ``target``."""

    __slots__ = ("target",)

    def __init__(self, target, loc: SourceLoc = UNKNOWN_LOC):
        super().__init__(loc)
        self.target = target

    def successors(self):
        return (self.target,)

    def __str__(self):
        return f"br {self.target.name}"


class Branch(Terminator):
    """Conditional branch on an i32 condition (non-zero = taken)."""

    __slots__ = ("cond", "then_block", "else_block")

    def __init__(self, cond: Value, then_block, else_block, loc: SourceLoc = UNKNOWN_LOC):
        super().__init__(loc)
        self.cond = cond
        self.then_block = then_block
        self.else_block = else_block

    def successors(self):
        return (self.then_block, self.else_block)

    def __str__(self):
        return f"br {self.cond}, {self.then_block.name}, {self.else_block.name}"


class Ret(Terminator):
    """Return from the function, optionally with a value."""

    __slots__ = ("value",)

    def __init__(self, value: Optional[Value] = None, loc: SourceLoc = UNKNOWN_LOC):
        super().__init__(loc)
        self.value = value

    def __str__(self):
        return f"ret {self.value}" if self.value is not None else "ret void"


class Unreachable(Terminator):
    """Marks a block no execution may reach (verifier aid)."""

    def __str__(self):
        return "unreachable"
