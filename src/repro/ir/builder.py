"""Convenience builder for constructing IR functions.

Used by the mini-C lowering pass and by tests that assemble IR directly.
The builder tracks the insertion block, generates fresh temporaries, and
refuses to emit past a terminator.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

from ..errors import IRError
from .function import BasicBlock, Function
from .instructions import (
    AddrOf,
    Alloc,
    BinOp,
    Branch,
    Call,
    CallIndirect,
    DeclLocal,
    Free,
    Gep,
    Jump,
    Load,
    LockOp,
    Malloc,
    MemSet,
    Move,
    Ret,
    Store,
    UnOp,
    Unreachable,
)
from .types import INT, IntType, PointerType, Type, VOID_PTR
from .values import Const, SourceLoc, UNKNOWN_LOC, Value, Var


class IRBuilder:
    """Incremental construction of one function's blocks and instructions."""

    def __init__(self, function: Function):
        self.function = function
        self.block: Optional[BasicBlock] = None
        self._temp_ids = itertools.count(1)
        self.loc: SourceLoc = UNKNOWN_LOC

    # -- positioning -------------------------------------------------------

    def new_block(self, name: str = "bb") -> BasicBlock:
        return self.function.add_block(name)

    def position_at(self, block: BasicBlock) -> None:
        self.block = block

    def set_loc(self, loc: SourceLoc) -> None:
        self.loc = loc

    @property
    def is_terminated(self) -> bool:
        return self.block is not None and self.block.is_terminated

    # -- temporaries -------------------------------------------------------

    def temp(self, ty: Type = INT, hint: str = "t") -> Var:
        # Temporary names are function-qualified: Var compares by name, and
        # the inter-procedural alias analysis must never conflate a "%ld1"
        # from two different functions (the paper writes these as func:v).
        return Var(f"%{self.function.name}.{hint}{next(self._temp_ids)}", ty)

    # -- instruction emission ---------------------------------------------

    def _emit(self, inst):
        if self.block is None:
            raise IRError("builder has no insertion block")
        return self.block.append(inst)

    def move(self, dst: Var, src: Value) -> Move:
        return self._emit(Move(dst, src, self.loc))

    def load(self, ptr: Var, ty: Optional[Type] = None, dst: Optional[Var] = None) -> Var:
        if dst is None:
            if ty is None:
                pointee = ptr.type.pointee if isinstance(ptr.type, PointerType) else None
                ty = pointee or INT
            dst = self.temp(ty, "ld")
        self._emit(Load(dst, ptr, self.loc))
        return dst

    def store(self, ptr: Var, src: Value) -> Store:
        return self._emit(Store(ptr, src, self.loc))

    def gep(self, base: Var, field: str, ty: Optional[Type] = None, index: Optional[Value] = None) -> Var:
        dst = self.temp(ty or VOID_PTR, "gep")
        self._emit(Gep(dst, base, field, index, self.loc))
        return dst

    def addr_of(self, var: Var, ty: Optional[Type] = None) -> Var:
        dst = self.temp(ty or PointerType(var.type), "adr")
        self._emit(AddrOf(dst, var, self.loc))
        return dst

    def binop(self, op: str, lhs: Value, rhs: Value, ty: Type = INT) -> Var:
        dst = self.temp(ty, "bin")
        self._emit(BinOp(dst, op, lhs, rhs, self.loc))
        return dst

    def unop(self, op: str, src: Value, ty: Type = INT) -> Var:
        dst = self.temp(ty, "un")
        self._emit(UnOp(dst, op, src, self.loc))
        return dst

    def call(self, callee: str, args: Sequence[Value], ret_ty: Optional[Type] = None) -> Optional[Var]:
        dst = self.temp(ret_ty, "ret") if ret_ty is not None else None
        self._emit(Call(dst, callee, args, self.loc))
        return dst

    def call_indirect(self, fn: Var, args: Sequence[Value], ret_ty: Optional[Type] = None) -> Optional[Var]:
        dst = self.temp(ret_ty, "ret") if ret_ty is not None else None
        self._emit(CallIndirect(dst, fn, args, self.loc))
        return dst

    def alloc(self, allocated_type: Type, zeroed: bool = False, hint: str = "slot") -> Var:
        dst = self.temp(PointerType(allocated_type), hint)
        self._emit(Alloc(dst, allocated_type, zeroed, self.loc))
        return dst

    def decl_local(self, var: Var) -> DeclLocal:
        return self._emit(DeclLocal(var, self.loc))

    def malloc(self, size: Value, zeroed: bool = False, may_fail: bool = True, allocator: str = "malloc", ty: Optional[Type] = None) -> Var:
        dst = self.temp(ty or VOID_PTR, "heap")
        self._emit(Malloc(dst, size, zeroed, may_fail, allocator, self.loc))
        return dst

    def free(self, ptr: Var, deallocator: str = "free") -> Free:
        return self._emit(Free(ptr, deallocator, self.loc))

    def memset(self, ptr: Var, value: Value, size: Value) -> MemSet:
        return self._emit(MemSet(ptr, value, size, self.loc))

    def lock(self, lock: Var, api: str = "spin_lock") -> LockOp:
        return self._emit(LockOp(lock, True, api, self.loc))

    def unlock(self, lock: Var, api: str = "spin_unlock") -> LockOp:
        return self._emit(LockOp(lock, False, api, self.loc))

    # -- terminators --------------------------------------------------------

    def jump(self, target: BasicBlock) -> Jump:
        return self.block.set_terminator(Jump(target, self.loc))

    def branch(self, cond: Value, then_block: BasicBlock, else_block: BasicBlock) -> Branch:
        return self.block.set_terminator(Branch(cond, then_block, else_block, self.loc))

    def ret(self, value: Optional[Value] = None) -> Ret:
        return self.block.set_terminator(Ret(value, self.loc))

    def unreachable(self) -> Unreachable:
        return self.block.set_terminator(Unreachable(self.loc))
