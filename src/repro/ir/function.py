"""Basic blocks, functions and modules of the repro IR."""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import IRError
from .instructions import Branch, Instruction, Jump, Ret, Terminator, Unreachable
from .types import FunctionType, StructType, Type, VOID
from .values import SourceLoc, UNKNOWN_LOC, Var

_block_ids = itertools.count(1)


class BasicBlock:
    """A straight-line instruction sequence ending in one terminator."""

    def __init__(self, name: str, parent: Optional["Function"] = None):
        self.name = name
        self.uid = next(_block_ids)
        self.parent = parent
        self.instructions: List[Instruction] = []
        self.terminator: Optional[Terminator] = None

    def append(self, inst: Instruction) -> Instruction:
        if self.terminator is not None:
            raise IRError(f"block {self.name} already terminated")
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def set_terminator(self, term: Terminator) -> Terminator:
        if self.terminator is not None:
            raise IRError(f"block {self.name} already terminated")
        term.parent = self
        self.terminator = term
        return term

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def successors(self) -> Tuple["BasicBlock", ...]:
        return self.terminator.successors() if self.terminator else ()

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.name} ({len(self.instructions)} insts)>"


class Function:
    """An IR function: parameters, blocks, and source metadata.

    ``is_interface`` marks module-interface functions — functions registered
    through a function-pointer field of a driver/ops struct and therefore
    having no explicit caller in the OS code (§1, D1).  These are PATA's
    analysis entry points alongside truly caller-less functions.
    """

    def __init__(
        self,
        name: str,
        params: Sequence[Var],
        return_type: Type = VOID,
        filename: str = "<ir>",
        line: int = 0,
        is_static: bool = False,
        variadic: bool = False,
    ):
        self.name = name
        self.params: List[Var] = list(params)
        self.return_type = return_type
        self.filename = filename
        self.line = line
        self.is_static = is_static
        self.variadic = variadic
        self.is_interface = False
        self.blocks: List[BasicBlock] = []
        self._block_names: Dict[str, BasicBlock] = {}

    @property
    def type(self) -> FunctionType:
        return FunctionType(self.return_type, tuple(p.type for p in self.params), self.variadic)

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise IRError(f"function {self.name} has no blocks")
        return self.blocks[0]

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    def add_block(self, name: str) -> BasicBlock:
        unique = name
        counter = 1
        while unique in self._block_names:
            counter += 1
            unique = f"{name}.{counter}"
        block = BasicBlock(unique, parent=self)
        self.blocks.append(block)
        self._block_names[unique] = block
        return block

    def get_block(self, name: str) -> BasicBlock:
        return self._block_names[name]

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def instruction_count(self) -> int:
        return sum(len(b.instructions) for b in self.blocks)

    def __repr__(self) -> str:
        return f"<Function {self.name} ({len(self.blocks)} blocks)>"


class InterfaceRegistration:
    """Records ``.field = function`` inside a static struct initializer —
    the pattern of Fig. 1 (``.probe = s5p_mfc_probe``)."""

    def __init__(self, struct_var: str, struct_type: Optional[StructType], field: str, function: str, loc: SourceLoc = UNKNOWN_LOC):
        self.struct_var = struct_var
        self.struct_type = struct_type
        self.field = field
        self.function = function
        self.loc = loc

    def __repr__(self) -> str:
        return f"<.{self.field} = {self.function} in {self.struct_var}>"


class Module:
    """A translation unit: struct types, globals, functions, registrations."""

    def __init__(self, name: str = "<module>"):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, Var] = {}
        self.structs: Dict[str, StructType] = {}
        self.registrations: List[InterfaceRegistration] = []
        self.source_lines: int = 0
        #: programs containing this module; adding a function after the
        #: module is linked must drop their name-lookup caches
        self._owners: List["Program"] = []

    def add_function(self, func: Function) -> Function:
        existing = self.functions.get(func.name)
        if existing is not None and not existing.is_declaration and not func.is_declaration:
            raise IRError(f"duplicate definition of function {func.name}")
        if existing is None or existing.is_declaration:
            self.functions[func.name] = func
            for owner in self._owners:
                owner._defined_cache = None
        return self.functions[func.name]

    def add_global(self, var: Var) -> Var:
        self.globals[var.name] = var
        return var

    def get_struct(self, name: str) -> StructType:
        if name not in self.structs:
            self.structs[name] = StructType(name)
        return self.structs[name]

    def add_registration(self, reg: InterfaceRegistration) -> None:
        self.registrations.append(reg)
        func = self.functions.get(reg.function)
        if func is not None:
            func.is_interface = True

    def defined_functions(self) -> Iterator[Function]:
        return (f for f in self.functions.values() if not f.is_declaration)

    def __repr__(self) -> str:
        return f"<Module {self.name} ({len(self.functions)} functions)>"


class Program:
    """A whole analyzed codebase: several modules linked by name.

    This is the unit PATA's information collector (§4, P1) works over: it
    resolves cross-module calls by function name and aggregates interface
    registrations.
    """

    def __init__(self, modules: Optional[Iterable[Module]] = None):
        self.modules: List[Module] = list(modules or [])
        self._defined_cache: Optional[Dict[str, Function]] = None
        for module in self.modules:
            module._owners.append(self)

    def add_module(self, module: Module) -> Module:
        self.modules.append(module)
        module._owners.append(self)
        self._defined_cache = None
        return module

    def functions(self) -> Iterator[Function]:
        for module in self.modules:
            yield from module.defined_functions()

    def _defined(self) -> Dict[str, Function]:
        """Name → defined function, built once per module set.  Lookups
        are hot (every inlined call site resolves by name); a linear
        module scan per call dominates large-corpus runs.  First
        definition wins, matching the old first-module-scan order."""
        cache = self._defined_cache
        if cache is None:
            cache = {}
            for module in self.modules:
                for name, func in module.functions.items():
                    if not func.is_declaration and name not in cache:
                        cache[name] = func
            self._defined_cache = cache
        return cache

    def lookup(self, name: str) -> Optional[Function]:
        return self._defined().get(name)

    def registrations(self) -> Iterator[InterfaceRegistration]:
        for module in self.modules:
            yield from module.registrations

    def total_source_lines(self) -> int:
        return sum(m.source_lines for m in self.modules)

    def __repr__(self) -> str:
        return f"<Program ({len(self.modules)} modules)>"
