"""Terms and atoms of the SMT-lite constraint language.

The path validator (§3.3) only ever produces *conjunctions* of atoms over
integer terms — exactly the fragment of Table 3: constants, variables
(symbols), unary/binary arithmetic, and relational atoms.  This module
defines that language; :mod:`repro.smt.solver` decides it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

REL_OPS = ("eq", "ne", "lt", "le", "gt", "ge")
NEGATED_REL = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt", "le": "gt", "gt": "le"}
SWAPPED_REL = {"eq": "eq", "ne": "ne", "lt": "gt", "gt": "lt", "le": "ge", "ge": "le"}


class Term:
    """Base class of SMT-lite terms."""

    def free_symbols(self) -> Iterator[int]:
        return iter(())


@dataclass(frozen=True)
class Num(Term):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Sym(Term):
    """A solver symbol.  The translator allocates one per *alias set*
    (Definition 4) — this is the aliasing saving of §3.3."""

    sid: int
    hint: str = ""

    def free_symbols(self) -> Iterator[int]:
        yield self.sid

    def __str__(self) -> str:
        return self.hint or f"x{self.sid}"


@dataclass(frozen=True)
class App(Term):
    """op(args...); op is an arithmetic/bit operator or 'neg'/'not'."""

    op: str
    args: Tuple[Term, ...]

    def free_symbols(self) -> Iterator[int]:
        for arg in self.args:
            yield from arg.free_symbols()

    def __str__(self) -> str:
        if len(self.args) == 1:
            return f"{self.op}({self.args[0]})"
        return f"({self.args[0]} {self.op} {self.args[1]})"


@dataclass(frozen=True)
class Atom:
    """A relational constraint ``lhs op rhs``."""

    op: str
    lhs: Term
    rhs: Term

    def __post_init__(self):
        if self.op not in REL_OPS:
            raise ValueError(f"unknown relational operator {self.op!r}")

    def negated(self) -> "Atom":
        return Atom(NEGATED_REL[self.op], self.lhs, self.rhs)

    def free_symbols(self) -> Iterator[int]:
        yield from self.lhs.free_symbols()
        yield from self.rhs.free_symbols()

    def __str__(self) -> str:
        symbol = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}[self.op]
        return f"{self.lhs} {symbol} {self.rhs}"


def _trunc_div(a: int, b: int) -> int:
    """C-style truncating division."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def eval_term(term: Term, env: Dict[int, int]) -> Optional[int]:
    """Evaluate under an assignment; None on division by zero or an unbound
    symbol."""
    if isinstance(term, Num):
        return term.value
    if isinstance(term, Sym):
        return env.get(term.sid)
    if isinstance(term, App):
        values = []
        for arg in term.args:
            value = eval_term(arg, env)
            if value is None:
                return None
            values.append(value)
        return _apply_op(term.op, values)
    raise TypeError(f"not a term: {term!r}")


def _apply_op(op: str, values) -> Optional[int]:
    if op == "neg":
        return -values[0]
    if op == "not":
        return ~values[0]
    a, b = values
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "div":
        return None if b == 0 else _trunc_div(a, b)
    if op == "mod":
        return None if b == 0 else a - _trunc_div(a, b) * b
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "shl":
        return a << (b & 63) if b >= 0 else None
    if op == "shr":
        return a >> (b & 63) if b >= 0 else None
    if op in ("eq", "ne", "lt", "le", "gt", "ge"):
        return int(eval_rel(op, a, b))
    raise ValueError(f"unknown operator {op!r}")


def eval_rel(op: str, a: int, b: int) -> bool:
    """Evaluate a relational operator on two ints."""
    if op == "eq":
        return a == b
    if op == "ne":
        return a != b
    if op == "lt":
        return a < b
    if op == "le":
        return a <= b
    if op == "gt":
        return a > b
    if op == "ge":
        return a >= b
    raise ValueError(f"unknown relational operator {op!r}")


def eval_atom(atom: Atom, env: Dict[int, int]) -> Optional[bool]:
    """Evaluate an atom under an assignment; None when undefined."""
    lhs = eval_term(atom.lhs, env)
    rhs = eval_term(atom.rhs, env)
    if lhs is None or rhs is None:
        return None
    return eval_rel(atom.op, lhs, rhs)


def fold(term: Term) -> Term:
    """Constant-fold a term bottom-up."""
    if isinstance(term, App):
        args = tuple(fold(a) for a in term.args)
        if all(isinstance(a, Num) for a in args):
            value = _apply_op(term.op, [a.value for a in args])
            if value is not None:
                return Num(value)
        return App(term.op, args)
    return term
