"""Conjunction solver for SMT-lite (the Z3 stand-in of this reproduction).

Decides satisfiability of a conjunction of :class:`~repro.smt.terms.Atom`
over the integers, in four phases:

1. **Equality closure** — ``x == c`` and ``x == y (+ c)`` atoms feed an
   offset union-find; contradictions are UNSAT immediately.
2. **Bound propagation** — relational atoms between a symbol class and a
   constant, and difference atoms between two classes, tighten integer
   intervals to a fixpoint; an empty interval is UNSAT.
3. **Disequality check** — ``x != ...`` atoms against pinned values.
4. **Model search** — a model is constructed greedily from the intervals
   and verified against *all* atoms (including nonlinear ones the earlier
   phases ignored).  If greedy fails, a bounded randomized/candidate
   search runs; if that also fails the result is UNKNOWN.

The caller (the PATA bug filter) treats UNKNOWN as *feasible* — a bug is
only dropped on a definite UNSAT.  This is the conservative direction:
it can leave false positives (as the paper reports for complex arithmetic,
§5.2) but never hides a real bug because the solver gave up.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .intervals import Interval, NEG_INF, POS_INF, apply_rel
from .terms import App, Atom, Num, SWAPPED_REL, Sym, Term, eval_atom, fold
from .unionfind import OffsetUnionFind


class SolveResult(Enum):
    """Verdict of one conjunction solve: SAT, UNSAT or UNKNOWN."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class Solution:
    result: SolveResult
    model: Optional[Dict[int, int]] = None
    reason: str = ""

    @property
    def is_sat(self) -> bool:
        return self.result is SolveResult.SAT

    @property
    def is_unsat(self) -> bool:
        return self.result is SolveResult.UNSAT

    @property
    def feasible(self) -> bool:
        """How the bug filter reads the verdict: only UNSAT is infeasible."""
        return self.result is not SolveResult.UNSAT


@dataclass
class _Normalized:
    """Atoms sorted into the classes the phases consume."""

    pinned: List[Tuple[int, str, int]] = field(default_factory=list)  # (sym, op, const)
    diffs: List[Tuple[int, str, int, int]] = field(default_factory=list)  # x op y + c
    complex_atoms: List[Atom] = field(default_factory=list)
    all_atoms: List[Atom] = field(default_factory=list)


class Solver:
    """One-shot conjunction solver; see module docstring."""

    def __init__(self, max_search_nodes: int = 50000, max_propagation_rounds: int = 64):
        self.max_search_nodes = max_search_nodes
        self.max_propagation_rounds = max_propagation_rounds

    # -- public API --------------------------------------------------------------

    def solve(self, atoms: Sequence[Atom]) -> Solution:
        folded = [Atom(a.op, fold(a.lhs), fold(a.rhs)) for a in atoms]
        # Trivially decide constant atoms.
        remaining: List[Atom] = []
        for atom in folded:
            if isinstance(atom.lhs, Num) and isinstance(atom.rhs, Num):
                if eval_atom(atom, {}) is False:
                    return Solution(SolveResult.UNSAT, reason=f"constant atom {atom} is false")
            else:
                remaining.append(atom)
        if not remaining:
            return Solution(SolveResult.SAT, model={})

        uf = OffsetUnionFind()
        norm = self._normalize(remaining, uf)
        if norm is None:
            return Solution(SolveResult.UNSAT, reason="equality closure contradiction")

        intervals = self._propagate(norm, uf)
        if intervals is None:
            return Solution(SolveResult.UNSAT, reason="empty interval after bound propagation")

        verdict = self._check_disequalities(norm, uf, intervals)
        if verdict is not None:
            return verdict

        return self._search_model(norm, uf, intervals)

    # -- phase 1: normalize + equalities --------------------------------------------

    def _normalize(self, atoms: List[Atom], uf: OffsetUnionFind) -> Optional[_Normalized]:
        norm = _Normalized(all_atoms=atoms)
        pending = list(atoms)
        for atom in pending:
            lhs, rhs = atom.lhs, atom.rhs
            if isinstance(lhs, Num) and not isinstance(rhs, Num):
                lhs, rhs = rhs, lhs
                atom = Atom(SWAPPED_REL[atom.op], lhs, rhs)
            shape = self._linear_shape(atom)
            if shape is None:
                norm.complex_atoms.append(atom)
                continue
            kind = shape[0]
            if kind == "pin":
                _, sym, op, const = shape
                if op == "eq":
                    if not uf.assign(sym, const):
                        return None
                else:
                    norm.pinned.append((sym, op, const))
            else:  # ("diff", x, op, y, c): x op y + c
                _, x, op, y, c = shape
                if op == "eq":
                    if not uf.union(x, y, c):
                        return None
                else:
                    norm.diffs.append((x, op, y, c))
        return norm

    @staticmethod
    def _linear_shape(atom: Atom):
        """Recognize ``sym op const`` and ``sym op sym (+/- const)``."""
        lhs, rhs = atom.lhs, atom.rhs
        if isinstance(lhs, Sym) and isinstance(rhs, Num):
            return ("pin", lhs.sid, atom.op, rhs.value)
        if isinstance(lhs, Sym) and isinstance(rhs, Sym):
            return ("diff", lhs.sid, atom.op, rhs.sid, 0)
        if (
            isinstance(lhs, Sym)
            and isinstance(rhs, App)
            and rhs.op in ("add", "sub")
            and len(rhs.args) == 2
            and isinstance(rhs.args[0], Sym)
            and isinstance(rhs.args[1], Num)
        ):
            delta = rhs.args[1].value if rhs.op == "add" else -rhs.args[1].value
            return ("diff", lhs.sid, atom.op, rhs.args[0].sid, delta)
        if (
            isinstance(rhs, Sym)
            and isinstance(lhs, App)
            and lhs.op in ("add", "sub")
            and len(lhs.args) == 2
            and isinstance(lhs.args[0], Sym)
            and isinstance(lhs.args[1], Num)
        ):
            delta = lhs.args[1].value if lhs.op == "add" else -lhs.args[1].value
            # lhs.sym + delta op rhs.sym  <=>  lhs.sym op rhs.sym - delta
            return ("diff", lhs.args[0].sid, atom.op, rhs.sid, -delta)
        return None

    # -- phase 2: interval propagation ----------------------------------------------

    def _propagate(self, norm: _Normalized, uf: OffsetUnionFind) -> Optional[Dict[int, Interval]]:
        intervals: Dict[int, Interval] = {}

        def interval_of(sym: int) -> Tuple[Interval, int]:
            root, offset = uf.find(sym)
            if root not in intervals:
                intervals[root] = Interval()
                pinned = uf.value_of(root)
                if pinned is not None:
                    intervals[root] = Interval(pinned, pinned)
            return intervals[root], offset

        # Seed with pinned values discovered during equality closure.
        for sym in uf.known_symbols():
            interval_of(sym)

        for _ in range(self.max_propagation_rounds):
            changed = False
            for sym, op, const in norm.pinned:
                iv, offset = interval_of(sym)
                # sym op const, sym = root + offset → root op const - offset
                changed |= apply_rel(iv, op, const - offset)
                if iv.empty:
                    return None
            for x, op, y, c in norm.diffs:
                ivx, ox = interval_of(x)
                ivy, oy = interval_of(y)
                # x op y + c with x = rx + ox, y = ry + oy:
                # rx op ry + (c + oy - ox)
                k = c + oy - ox
                changed |= self._propagate_diff(ivx, op, ivy, k)
                if ivx.empty or ivy.empty:
                    return None
            if not changed:
                break
        return intervals

    @staticmethod
    def _propagate_diff(ivx: Interval, op: str, ivy: Interval, k: int) -> bool:
        """Tighten for ``rx op ry + k``; bounds of one side push the other."""
        changed = False
        if op in ("lt", "le"):
            slack = -1 if op == "lt" else 0
            if ivy.hi < POS_INF:
                changed |= ivx.tighten_hi(ivy.hi + k + slack)
            if ivx.lo > NEG_INF:
                changed |= ivy.tighten_lo(ivx.lo - k - slack)
        elif op in ("gt", "ge"):
            slack = 1 if op == "gt" else 0
            if ivy.lo > NEG_INF:
                changed |= ivx.tighten_lo(ivy.lo + k + slack)
            if ivx.hi < POS_INF:
                changed |= ivy.tighten_hi(ivx.hi - k - slack)
        elif op == "ne":
            sx, sy = ivx.singleton, ivy.singleton
            if sx is not None and sy is None:
                changed |= apply_rel(ivy, "ne", sx - k)
            elif sy is not None and sx is None:
                changed |= apply_rel(ivx, "ne", sy + k)
        return changed

    # -- phase 3: disequalities ---------------------------------------------------------

    def _check_disequalities(
        self, norm: _Normalized, uf: OffsetUnionFind, intervals: Dict[int, Interval]
    ) -> Optional[Solution]:
        for sym, op, const in norm.pinned:
            if op != "ne":
                continue
            value = uf.value_of(sym)
            if value is not None and value == const:
                return Solution(SolveResult.UNSAT, reason=f"x{sym} pinned to {const} but must differ")
        for x, op, y, c in norm.diffs:
            if op != "ne":
                continue
            diff = uf.difference(x, y)
            if diff is not None and diff == c:
                return Solution(SolveResult.UNSAT, reason=f"x{x} - x{y} = {c} contradicts !=")
            vx, vy = uf.value_of(x), uf.value_of(y)
            if vx is not None and vy is not None and vx == vy + c:
                return Solution(SolveResult.UNSAT, reason="both sides pinned equal under !=")
        return None

    # -- phase 4: model construction --------------------------------------------------

    def _search_model(
        self, norm: _Normalized, uf: OffsetUnionFind, intervals: Dict[int, Interval]
    ) -> Solution:
        symbols: Set[int] = set()
        for atom in norm.all_atoms:
            symbols.update(atom.free_symbols())
        if not symbols:
            return Solution(SolveResult.SAT, model={})

        roots: Dict[int, List[int]] = {}
        for sym in symbols:
            root, _ = uf.find(sym)
            roots.setdefault(root, []).append(sym)

        candidates = self._candidate_values(norm, uf, intervals, roots)
        total = 1
        for values in candidates.values():
            total *= max(1, len(values))
            if total > self.max_search_nodes:
                break

        root_list = sorted(roots)
        if total <= self.max_search_nodes:
            for combo in itertools.product(*(candidates[r] for r in root_list)):
                env = self._env_from_roots(dict(zip(root_list, combo)), symbols, uf)
                if self._verify(norm.all_atoms, env):
                    return Solution(SolveResult.SAT, model=env)
            # The candidate grid is complete only when every root interval
            # was finite and fully enumerated; we track that below.
            if all(self._fully_enumerated(intervals.get(r, Interval()), candidates[r]) for r in root_list):
                return Solution(SolveResult.UNSAT, reason="finite domains exhausted")
            return Solution(SolveResult.UNKNOWN, reason="candidate search failed")
        # Greedy single shot: pick the first candidate of each root.
        env = self._env_from_roots({r: candidates[r][0] for r in root_list}, symbols, uf)
        if self._verify(norm.all_atoms, env):
            return Solution(SolveResult.SAT, model=env)
        return Solution(SolveResult.UNKNOWN, reason="search space too large")

    @staticmethod
    def _fully_enumerated(interval: Interval, values: List[int]) -> bool:
        return interval.width() <= len(values) and not interval.empty

    def _candidate_values(self, norm, uf, intervals, roots) -> Dict[int, List[int]]:
        constants: Set[int] = {0, 1, -1, 2, -2}
        for atom in norm.all_atoms:
            for term in (atom.lhs, atom.rhs):
                constants.update(self._constants_in(term))
        candidates: Dict[int, List[int]] = {}
        for root in roots:
            iv = intervals.get(root, Interval())
            pinned = uf.value_of(root)
            if pinned is not None:
                candidates[root] = [pinned]
                continue
            values: List[int] = []
            if not iv.empty and iv.width() <= 24:
                values = list(range(iv.lo, iv.hi + 1))
            else:
                pool = set()
                for c in constants:
                    for delta in (-1, 0, 1):
                        pool.add(c + delta)
                if iv.lo > NEG_INF:
                    pool.update((iv.lo, iv.lo + 1))
                if iv.hi < POS_INF:
                    pool.update((iv.hi, iv.hi - 1))
                values = sorted(v for v in pool if iv.contains(v))
                if not values:
                    values = [iv.lo if iv.lo > NEG_INF else (iv.hi if iv.hi < POS_INF else 0)]
            candidates[root] = values
        return candidates

    @staticmethod
    def _constants_in(term: Term) -> Set[int]:
        if isinstance(term, Num):
            return {term.value}
        if isinstance(term, App):
            out: Set[int] = set()
            for arg in term.args:
                out.update(Solver._constants_in(arg))
            return out
        return set()

    @staticmethod
    def _env_from_roots(root_env: Dict[int, int], symbols: Set[int], uf: OffsetUnionFind) -> Dict[int, int]:
        env: Dict[int, int] = {}
        for sym in symbols:
            root, offset = uf.find(sym)
            env[sym] = root_env.get(root, 0) + offset
        return env

    @staticmethod
    def _verify(atoms: List[Atom], env: Dict[int, int]) -> bool:
        for atom in atoms:
            if eval_atom(atom, env) is not True:
                return False
        return True


def solve(atoms: Sequence[Atom], **kwargs) -> Solution:
    """Convenience one-shot solve."""
    return Solver(**kwargs).solve(atoms)
