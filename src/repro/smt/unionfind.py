"""Offset union-find (a.k.a. weighted quick-union) for equality reasoning.

Maintains classes of symbols related by ``x = y + c``.  ``find(x)``
returns ``(root, offset)`` with the invariant ``x = root + offset``.
Constant equalities pin a class to a value.  Contradictions surface as
``union``/``assign`` returning False.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple


class OffsetUnionFind:
    """Union-find over symbols related by ``x = y + c``; see module docstring."""

    def __init__(self) -> None:
        self._parent: Dict[int, int] = {}
        self._offset: Dict[int, int] = {}  # offset to parent
        self._value: Dict[int, int] = {}  # pinned value of a *root*

    def find(self, x: int) -> Tuple[int, int]:
        """(root, offset) with x = root + offset; path-compressing."""
        if x not in self._parent:
            self._parent[x] = x
            self._offset[x] = 0
            return x, 0
        chain = []
        node = x
        while self._parent[node] != node:
            chain.append(node)
            node = self._parent[node]
        root = node
        # Recompute cumulative offsets and compress.
        total = 0
        for node in reversed(chain):
            total += self._offset[node]
        running = total
        for node in chain:
            self._parent[node] = root
            old = self._offset[node]
            self._offset[node] = running
            running -= old
        return root, self._offset.get(x, 0) if x != root else 0

    def union(self, x: int, y: int, delta: int) -> bool:
        """Assert x = y + delta.  False on contradiction."""
        rx, ox = self.find(x)
        ry, oy = self.find(y)
        # x = rx + ox, y = ry + oy; want rx + ox = ry + oy + delta.
        if rx == ry:
            return ox == oy + delta
        # Attach rx under ry: rx = ry + (oy + delta - ox).
        shift = oy + delta - ox
        self._parent[rx] = ry
        self._offset[rx] = shift
        vx = self._value.pop(rx, None)
        if vx is not None:
            return self.assign(rx, vx)
        return True

    def assign(self, x: int, value: int) -> bool:
        """Assert x == value.  False on contradiction."""
        root, offset = self.find(x)
        pinned = self._value.get(root)
        if pinned is not None:
            return pinned + offset == value
        self._value[root] = value - offset
        return True

    def value_of(self, x: int) -> Optional[int]:
        root, offset = self.find(x)
        pinned = self._value.get(root)
        return None if pinned is None else pinned + offset

    def same_class(self, x: int, y: int) -> bool:
        return self.find(x)[0] == self.find(y)[0]

    def difference(self, x: int, y: int) -> Optional[int]:
        """x - y when both are in one class, else None."""
        rx, ox = self.find(x)
        ry, oy = self.find(y)
        return ox - oy if rx == ry else None

    def known_symbols(self):
        return list(self._parent)
