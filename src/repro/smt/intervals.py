"""Integer interval domain used for bound propagation in the solver."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: Practical infinities — beyond any constant the translator produces.
NEG_INF = -(1 << 63)
POS_INF = 1 << 63


@dataclass
class Interval:
    lo: int = NEG_INF
    hi: int = POS_INF

    @property
    def empty(self) -> bool:
        return self.lo > self.hi

    @property
    def singleton(self) -> Optional[int]:
        return self.lo if self.lo == self.hi else None

    def tighten_lo(self, value: int) -> bool:
        """Raise the lower bound; True when something changed."""
        if value > self.lo:
            self.lo = value
            return True
        return False

    def tighten_hi(self, value: int) -> bool:
        if value < self.hi:
            self.hi = value
            return True
        return False

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def width(self) -> int:
        return self.hi - self.lo + 1 if not self.empty else 0

    def copy(self) -> "Interval":
        return Interval(self.lo, self.hi)

    def __str__(self) -> str:
        lo = "-inf" if self.lo == NEG_INF else str(self.lo)
        hi = "+inf" if self.hi == POS_INF else str(self.hi)
        return f"[{lo}, {hi}]"


def apply_rel(interval: Interval, op: str, bound: int) -> bool:
    """Tighten ``interval`` by ``x op bound``; True when changed."""
    if op == "eq":
        changed = interval.tighten_lo(bound)
        return interval.tighten_hi(bound) or changed
    if op == "lt":
        return interval.tighten_hi(bound - 1)
    if op == "le":
        return interval.tighten_hi(bound)
    if op == "gt":
        return interval.tighten_lo(bound + 1)
    if op == "ge":
        return interval.tighten_lo(bound)
    if op == "ne":
        # Only representable at the edges of the interval.
        changed = False
        if interval.lo == bound:
            interval.lo += 1
            changed = True
        if interval.hi == bound:
            interval.hi -= 1
            changed = True
        return changed
    raise ValueError(f"unknown relational operator {op!r}")
