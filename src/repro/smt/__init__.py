"""SMT-lite: the integer conjunction solver and path-constraint translator
standing in for Z3 in the path-validation stage (§3.3)."""

from .terms import App, Atom, Num, Sym, Term, eval_atom, eval_term, fold
from .intervals import Interval, NEG_INF, POS_INF
from .unionfind import OffsetUnionFind
from .solver import Solution, SolveResult, Solver, solve
from .translate import PathTranslator, Translation, translate_trace, translate_trace_pair

__all__ = [
    "App", "Atom", "Num", "Sym", "Term", "eval_atom", "eval_term", "fold",
    "Interval", "NEG_INF", "POS_INF",
    "OffsetUnionFind",
    "Solution", "SolveResult", "Solver", "solve",
    "PathTranslator", "Translation", "translate_trace", "translate_trace_pair",
]
