"""Translation of a recorded bug path into SMT-lite constraints (§3.3).

Implements Table 3 with the alias-aware symbol mapping of Definitions 4/5:
a fresh :class:`~repro.smt.terms.Sym` is allocated per *alias-graph node*,
so every variable in one alias set shares one symbol and the explicit
``R'(p)==R'(q)`` constraints (and the per-field implicit ones) of Fig. 9(b)
are never materialized.  The translator replays the path on a fresh alias
graph; strong updates naturally give SSA-style fresh symbols because an
assigned variable moves to a new node.

The trace consumed here is produced by the engine as a sequence of tagged
tuples:

- ``("inst", Instruction)`` — a non-branch instruction;
- ``("branch", Branch, taken)`` — a resolved conditional;
- ``("param", Var, Value)`` / ``("retval", Var, Value)`` — the MOVEs of
  call/return boundaries (HandleCALL, Fig. 6);
- ``("enter", name, frame_id)`` / ``("exit", frame_id)`` — frame markers
  (ignored here).

For Table 5's accounting the translator also counts what an alias-*unaware*
translation would have emitted: one explicit equality per MOVE-like step
plus one implicit equality per materialized field of the source's alias
class (the Fig. 9 example).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..alias import AliasGraph
from ..alias.graph import _node_ids
from ..ir import (
    AddrOf,
    Alloc,
    BinOp,
    Branch,
    Call,
    CallIndirect,
    Const,
    DeclLocal,
    Gep,
    Load,
    Malloc,
    Move,
    PointerType,
    Store,
    UnOp,
    Value,
    Var,
)
from ..presolve.events import TAINT_SOURCE_HINTS
from .terms import App, Atom, Num, Sym, Term


@dataclass
class Translation:
    """Constraints for one path plus the Table 5 counters."""

    atoms: List[Atom] = field(default_factory=list)
    aware_constraints: int = 0
    unaware_constraints: int = 0
    symbols_used: int = 0


class PathTranslator:
    """Replays one trace, building constraints.  Single use.

    With a P1.7 ``partition``, proven-singleton variables never
    materialize replay nodes: each gets a symbol id per *strong-update
    generation*, allocated from the shared node-id counter at exactly
    the points where the unskipped replay would create their nodes.
    The resulting constraint system is the same up to a consistent
    symbol renaming, and every Table 5 counter is preserved — a
    singleton's node is always isolated (out-degree 0), so the
    unaware-translation accounting cannot observe the difference.
    """

    def __init__(self, partition=None, skip_names=None):
        # ``skip_names`` overrides the partition's whole-program
        # singleton set — the P1.8 flow tier resolves a per-entry skip
        # set from its must-alias facts (any set sound for the trace's
        # instructions yields an identical constraint system, because
        # the skip machinery allocates symbol ids from the shared node
        # counter at exactly the unskipped replay's creation points).
        if skip_names is None:
            skip_names = partition.singletons if partition is not None else None
        self.graph = AliasGraph(skip_names=skip_names)
        self.result = Translation()
        #: comparison definitions: node uid -> (op, lhs term, rhs term)
        self._cmp_defs: Dict[int, Tuple[str, Term, Term]] = {}
        #: branches already constrained once (loop re-entries are havocked:
        #: PATA "fails to check loop conditions for multiple iterations",
        #: §5.2 — re-encounters of one branch add no constraint)
        self._seen_branches: set = set()
        self._symbols: set = set()
        #: (skipped name, generation) -> allocated symbol id
        self._skip_ids: Dict[Tuple[str, int], int] = {}

    # -- term helpers ------------------------------------------------------------

    def _sym(self, node) -> Sym:
        self._symbols.add(node.uid)
        return Sym(node.uid)

    def _skip_uid(self, name: str) -> int:
        """Symbol id for the current generation of a skipped singleton —
        the stand-in for the node uid the unskipped replay would use."""
        key = (name, self.graph.skip_generation(name))
        uid = self._skip_ids.get(key)
        if uid is None:
            uid = next(_node_ids)
            self._skip_ids[key] = uid
        return uid

    def _skip_sym(self, name: str) -> Sym:
        uid = self._skip_uid(name)
        self._symbols.add(uid)
        return Sym(uid)

    def _detach_sym(self, dst: Var) -> Sym:
        """Strong-update ``dst`` and return the symbol of its new version."""
        node = self.graph.detach(dst)
        if node is None:  # skipped singleton: generation already bumped
            return self._skip_sym(dst.name)
        return self._sym(node)

    def term_of(self, value: Value) -> Term:
        if isinstance(value, Const):
            return Num(value.value)
        assert isinstance(value, Var)
        if value.name in self.graph.skip_names:
            return self._skip_sym(value.name)
        return self._sym(self.graph.node_of(value))

    def _emit(self, atom: Atom) -> None:
        self.result.atoms.append(atom)
        self.result.aware_constraints += 1
        self.result.unaware_constraints += 1

    def _count_move_unaware(self, src: Value) -> None:
        """An alias-unaware translation emits R'(dst)==R'(src) plus one
        implicit equality per known field of the source's class."""
        self.result.unaware_constraints += 1
        if isinstance(src, Var):
            if src.name in self.graph.skip_names:
                return  # a singleton's class has no fields (out-degree 0)
            node = self.graph.node_of(src)
            self.result.unaware_constraints += len(node.out)

    # -- step dispatch ------------------------------------------------------------

    def step(self, entry: Tuple) -> None:
        tag = entry[0]
        if tag == "inst":
            self._step_inst(entry[1])
        elif tag == "branch":
            self._step_branch(entry[1], entry[2])
        elif tag in ("param", "retval"):
            self._step_move_like(entry[1], entry[2])
        # "enter"/"exit" markers carry no constraints.

    def _step_move_like(self, dst: Var, src: Value) -> None:
        self._count_move_unaware(src)
        if isinstance(src, Var):
            self.graph.handle_move(dst, src)  # same symbol: no constraint
        else:
            self._emit(Atom("eq", self._detach_sym(dst), Num(src.value)))

    def _step_inst(self, inst) -> None:
        if isinstance(inst, Move):
            self._step_move_like(inst.dst, inst.src)
        elif isinstance(inst, Load):
            self._count_move_unaware(inst.ptr)
            self.graph.handle_load(inst.dst, inst.ptr)
        elif isinstance(inst, Store):
            self._count_move_unaware(inst.src)
            if isinstance(inst.src, Var):
                self.graph.handle_store(inst.ptr, inst.src)
            else:
                node = self.graph.handle_store_fresh(inst.ptr)
                self._emit(Atom("eq", self._sym(node), Num(inst.src.value)))
        elif isinstance(inst, Gep):
            self.result.unaware_constraints += 1
            self.graph.handle_gep(inst.dst, inst.base, inst.field)
        elif isinstance(inst, AddrOf):
            self.result.unaware_constraints += 1
            node = self.graph.handle_addr_of(inst.dst, inst.var)
            # An address of a real object is never NULL.
            self._emit(Atom("ne", self._sym(node), Num(0)))
        elif isinstance(inst, BinOp):
            self._step_binop(inst)
        elif isinstance(inst, UnOp):
            operand = self.term_of(inst.src)
            sym = self._detach_sym(inst.dst)
            op = "neg" if inst.op == "neg" else "not"
            self._emit(Atom("eq", sym, App(op, (operand,))))
        elif isinstance(inst, Malloc):
            node = self.graph.handle_fresh_object(inst.dst)
            if not inst.may_fail:
                self._emit(Atom("ne", self._sym(node), Num(0)))
        elif isinstance(inst, Alloc):
            node = self.graph.handle_fresh_object(inst.dst)
            self._emit(Atom("ne", self._sym(node), Num(0)))
        elif isinstance(inst, DeclLocal):
            self._detach_quiet(inst.var)
        elif isinstance(inst, (Call, CallIndirect)):
            if isinstance(inst, Call) and any(
                hint in inst.callee for hint in TAINT_SOURCE_HINTS
            ):
                self._havoc_source_pointees(inst)
            if inst.dst is not None:
                self._detach_quiet(inst.dst)  # unknown return value
        # Free / MemSet / LockOp constrain nothing.

    def _havoc_source_pointees(self, inst: Call) -> None:
        """A user-input source call overwrites its out-buffers: drop every
        constraint on the region behind each pointer argument by moving
        the whole pointee alias class to a fresh (unconstrained) node.

        Without this, ``int chunk = 1; copy_from_user(&chunk, ...)`` would
        keep ``chunk == 1`` alive and wrongly discharge the taint
        checker's out-of-range atom at a later ``total / chunk`` sink.
        ``handle_store_fresh`` alone only retargets the ``*`` edge — the
        pointee's *variables* must migrate too, so later reads of any
        alias (``chunk`` itself) see the fresh symbol.
        """
        for arg in inst.args:
            if not (isinstance(arg, Var) and isinstance(arg.type, PointerType)):
                continue
            pointee = self.graph.deref_node(arg)
            fresh = self.graph.handle_store_fresh(arg)
            if pointee is not None:
                for name in list(pointee.vars):
                    self.graph._move_var(name, pointee, fresh)

    def _detach_quiet(self, dst: Var) -> None:
        """Strong update with no constraint.  For a skipped singleton the
        fresh symbol id is still claimed so the id sequence (and thus the
        relative symbol order the solver sees) matches the unskipped
        replay, where ``detach`` consumes one node id here."""
        if self.graph.detach(dst) is None:
            self._skip_uid(dst.name)

    def _step_binop(self, inst: BinOp) -> None:
        lhs = self.term_of(inst.lhs)
        rhs = self.term_of(inst.rhs)
        node = self.graph.detach(inst.dst)
        uid = node.uid if node is not None else self._skip_uid(inst.dst.name)
        if inst.is_comparison:
            # The comparison constrains nothing by itself; the branch that
            # consumes it will (Tstm(brt/brf) of Table 3).
            self._cmp_defs[uid] = (inst.op, lhs, rhs)
        else:
            self._symbols.add(uid)
            self._emit(Atom("eq", Sym(uid), App(inst.op, (lhs, rhs))))

    def _step_branch(self, branch: Branch, taken: bool) -> None:
        occurrence_key = (branch.uid, taken)
        if branch.uid in self._seen_branches:
            # Loop re-entry: no constraint (havoc), see class docstring.
            return
        self._seen_branches.add(branch.uid)
        cond = branch.cond
        if isinstance(cond, Const):
            return
        if cond.name in self.graph.skip_names:
            uid = self._skip_uid(cond.name)
        else:
            uid = self.graph.node_of(cond).uid
        cmp_def = self._cmp_defs.get(uid)
        if cmp_def is not None:
            op, lhs, rhs = cmp_def
            atom = Atom(op, lhs, rhs)
        else:
            self._symbols.add(uid)
            atom = Atom("ne", Sym(uid), Num(0))
        self._emit(atom if taken else atom.negated())

    # -- entry point ----------------------------------------------------------------

    def translate(
        self,
        trace: Sequence[Tuple],
        extra_requirement: Optional[Tuple[str, str, int]] = None,
    ) -> Translation:
        for entry in trace:
            self.step(entry)
        if extra_requirement is not None:
            op, var_name, const = extra_requirement
            if var_name in self.graph.skip_names:
                # "Bound on this replay" for a skipped singleton: it was
                # strong-updated (generation > 0) or read at least once.
                gen = self.graph.skip_generation(var_name)
                if gen > 0 or (var_name, 0) in self._skip_ids:
                    self._emit(Atom(op, self._skip_sym(var_name), Num(const)))
            else:
                node = self.graph.node_of_name(var_name)
                if node is not None:
                    self._emit(Atom(op, self._sym(node), Num(const)))
            # An unseen variable is unconstrained: requirement trivially
            # satisfiable, nothing to emit.
        self.result.symbols_used = len(self._symbols)
        return self.result


class NaPathTranslator:
    """Alias-*unaware* translation (Fig. 9(b)): one symbol per variable
    version, explicit ``R'(dst)==R'(src)`` equalities for every MOVE-like
    step, and no memory tracking — loads produce unconstrained fresh
    symbols.  Used by PATA-NA (Table 6) and the CSA-like baseline: alias-
    implied contradictions are invisible, so more infeasible paths
    survive validation.
    """

    def __init__(self):
        self.result = Translation()
        self._env: Dict[str, Sym] = {}
        self._counter = 0
        self._cmp_defs: Dict[str, Tuple[str, Term, Term]] = {}
        self._seen_branches: set = set()

    def _fresh(self, name: str) -> Sym:
        self._counter += 1
        self.result.symbols_used += 1
        sym = Sym(self._counter, hint=f"{name}#{self._counter}")
        self._env[name] = sym
        return sym

    def term_of(self, value: Value) -> Term:
        if isinstance(value, Const):
            return Num(value.value)
        assert isinstance(value, Var)
        sym = self._env.get(value.name)
        return sym if sym is not None else self._fresh(value.name)

    def _emit(self, atom: Atom) -> None:
        self.result.atoms.append(atom)
        self.result.aware_constraints += 1
        self.result.unaware_constraints += 1

    def step(self, entry: Tuple) -> None:
        tag = entry[0]
        if tag == "branch":
            branch, taken = entry[1], entry[2]
            if branch.uid in self._seen_branches:
                return
            self._seen_branches.add(branch.uid)
            cond = branch.cond
            if isinstance(cond, Const):
                return
            cmp_def = self._cmp_defs.get(cond.name)
            atom = (
                Atom(cmp_def[0], cmp_def[1], cmp_def[2])
                if cmp_def is not None
                else Atom("ne", self.term_of(cond), Num(0))
            )
            self._emit(atom if taken else atom.negated())
            return
        if tag in ("param", "retval"):
            dst, src = entry[1], entry[2]
            src_term = self.term_of(src)
            self._emit(Atom("eq", self._fresh(dst.name), src_term))
            return
        if tag != "inst":
            return
        inst = entry[1]
        if isinstance(inst, Move):
            src_term = self.term_of(inst.src)
            self._emit(Atom("eq", self._fresh(inst.dst.name), src_term))
        elif isinstance(inst, BinOp):
            lhs = self.term_of(inst.lhs)
            rhs = self.term_of(inst.rhs)
            sym = self._fresh(inst.dst.name)
            if inst.is_comparison:
                self._cmp_defs[inst.dst.name] = (inst.op, lhs, rhs)
            else:
                self._emit(Atom("eq", sym, App(inst.op, (lhs, rhs))))
        elif isinstance(inst, UnOp):
            operand = self.term_of(inst.src)
            op = "neg" if inst.op == "neg" else "not"
            self._emit(Atom("eq", self._fresh(inst.dst.name), App(op, (operand,))))
        elif isinstance(inst, Alloc):
            self._emit(Atom("ne", self._fresh(inst.dst.name), Num(0)))
        elif isinstance(inst, Malloc):
            sym = self._fresh(inst.dst.name)
            if not inst.may_fail:
                self._emit(Atom("ne", sym, Num(0)))
        else:
            dst = inst.defined_var() if hasattr(inst, "defined_var") else None
            if dst is not None:
                self._fresh(dst.name)  # unconstrained (memory/unknown)

    def translate(
        self,
        trace: Sequence[Tuple],
        extra_requirement: Optional[Tuple[str, str, int]] = None,
    ) -> Translation:
        for entry in trace:
            self.step(entry)
        if extra_requirement is not None:
            op, var_name, const = extra_requirement
            sym = self._env.get(var_name)
            if sym is not None:
                self._emit(Atom(op, sym, Num(const)))
        return self.result


def translate_trace(
    trace: Sequence[Tuple],
    extra_requirement: Optional[Tuple[str, str, int]] = None,
    alias_aware: bool = True,
    partition=None,
    skip_names=None,
) -> Translation:
    """Translate one recorded path into SMT-lite constraints."""
    if alias_aware:
        return PathTranslator(partition=partition, skip_names=skip_names).translate(
            trace, extra_requirement
        )
    return NaPathTranslator().translate(trace, extra_requirement)


def _trace_defined_globals(trace: Sequence[Tuple]) -> set:
    """Global names a trace may (re)define: direct definition targets,
    call-boundary moves, and address-taken globals (``&g`` lets later
    stores write ``g`` through a pointer)."""
    names = set()
    for entry in trace:
        tag = entry[0]
        if tag in ("param", "retval"):
            dst = entry[1]
            if isinstance(dst, Var) and dst.is_global:
                names.add(dst.name)
        elif tag == "inst":
            inst = entry[1]
            if isinstance(inst, AddrOf) and inst.var.is_global:
                names.add(inst.var.name)
            dst = inst.defined_var()
            if isinstance(dst, Var) and dst.is_global:
                names.add(dst.name)
    return names


def translate_trace_pair(
    trace_a: Sequence[Tuple],
    trace_b: Sequence[Tuple],
    alias_aware: bool = True,
    partition=None,
    skip_names_a=None,
    skip_names_b=None,
    extra_requirement_b=None,
) -> Translation:
    """Translate two independently recorded paths into one *joint*
    constraint set — stage 2 for pair findings (the race detector's
    P2.5 matches).

    Each trace replays on its own translator, so their symbol spaces
    are disjoint (alias-node uids are globally unique; the NA replay
    offsets the second translator's counter).  The two worlds are then
    **bridged**: a global that both paths read but neither may write is
    one shared cell whose value neither execution changes, so its two
    symbols are equated.  That single equality is what lets a
    contradiction cross paths — a writer guarded by ``flag != 0`` and a
    reader guarded by ``flag == 0`` become jointly UNSAT, and the pair
    is discharged where a lockset-only tool keeps it.

    Bridging is deliberately conservative: a global that either trace
    defines, receives at a call boundary, or takes the address of stays
    unbridged (its value may legitimately differ between the paths), as
    does one the replay rebinds.  Fewer bridges mean fewer provable
    contradictions — errors fall toward *keeping* the report, matching
    the filter's "only a proven contradiction silences a finding"
    contract.

    ``extra_requirement_b`` is an out-of-range atom ("op", var, const)
    interpreted in the *second* trace's world — the sink side of a P2.6
    cross-module taint pair.  It must be satisfiable together with both
    path conditions and the bridges, so a range check dominating the
    sink discharges the pair exactly like the single-trace case.
    """
    defined = _trace_defined_globals(trace_a) | _trace_defined_globals(trace_b)
    bridges: List[Atom] = []
    if alias_aware:
        # Per-trace skip sets (each trace may come from a different
        # entry whose closure proves different names skippable).  Globals
        # are never skipped under any tier, so the bridging walk below
        # sees every ``@`` name either way.
        first = PathTranslator(partition=partition, skip_names=skip_names_a)
        second = PathTranslator(partition=partition, skip_names=skip_names_b)
        result_a = first.translate(trace_a)
        result_b = second.translate(trace_b, extra_requirement_b)
        for name in sorted(first.graph._node_of):
            if not name.startswith("@") or name in defined:
                continue
            node_b = second.graph.node_of_name(name)
            if node_b is None:
                continue
            # Bound exactly once on both replays: the name was only ever
            # read, so one symbol denotes its value on the whole path.
            if first.graph.journal.count(name) != 1 or second.graph.journal.count(name) != 1:
                continue
            node_a = first.graph.node_of_name(name)
            bridges.append(Atom("eq", first._sym(node_a), second._sym(node_b)))
    else:
        first = NaPathTranslator()
        result_a = first.translate(trace_a)
        second = NaPathTranslator()
        second._counter = first._counter  # keep the symbol spaces disjoint
        result_b = second.translate(trace_b, extra_requirement_b)
        for name in sorted(first._env):
            if not name.startswith("@") or name in defined:
                continue
            sym_b = second._env.get(name)
            if sym_b is not None:
                bridges.append(Atom("eq", first._env[name], sym_b))
    return Translation(
        atoms=result_a.atoms + result_b.atoms + bridges,
        aware_constraints=result_a.aware_constraints + result_b.aware_constraints + len(bridges),
        unaware_constraints=result_a.unaware_constraints + result_b.unaware_constraints + len(bridges),
        symbols_used=result_a.symbols_used + result_b.symbols_used,
    )
