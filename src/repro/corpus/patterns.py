"""Bug / bait / filler pattern library for the corpus generator.

Each pattern emits a self-contained mini-C snippet (structs + functions,
names suffixed with a unique id) plus ground-truth annotations with line
offsets relative to the snippet.  The patterns are modeled on the paper's
case studies:

* Fig. 1  — interface function whose parameter aliases a stored field;
* Fig. 3  — check in one function, dereference in a callee via a struct
  field alias;
* Fig. 12(a-d) — MCDE driver NPD, Zephyr sendto NPD, RIOT syscall ML,
  TencentOS pthread UVA;
* Fig. 9  — the contradictory-constraints false bug that path validation
  must drop;
* §5.5    — double-lock, array-index-underflow, division-by-zero.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..typestate import BugKind
from .spec import Requirement

_ADJ = ["mx", "sun", "omap", "bcm", "rt", "qca", "tegra", "imx", "ath", "rk", "exy", "mtk"]
_NOUN = ["dma", "phy", "mac", "uart", "spi", "i2c", "gpio", "pwm", "adc", "wdt", "rtc", "emc"]


def _devname(rng: random.Random) -> str:
    return f"{rng.choice(_ADJ)}_{rng.choice(_NOUN)}"


@dataclass
class Snippet:
    lines: List[str] = field(default_factory=list)
    #: (kind, rel_start, rel_end, requirement)
    bugs: List[Tuple[BugKind, int, int, Requirement]] = field(default_factory=list)
    #: (kind or None, rel_start, rel_end)
    baits: List[Tuple[Optional[BugKind], int, int]] = field(default_factory=list)
    pattern: str = ""

    def add(self, line: str = "") -> int:
        self.lines.append(line)
        return len(self.lines) - 1

    def extend(self, text: str) -> Tuple[int, int]:
        start = len(self.lines)
        for line in text.strip("\n").split("\n"):
            self.lines.append(line)
        return start, len(self.lines) - 1

    def bug(self, kind: BugKind, start: int, end: int, **req) -> None:
        self.bugs.append((kind, start, end, Requirement(**req)))

    def bait(self, kind: Optional[BugKind], start: int, end: int) -> None:
        self.baits.append((kind, start, end))


PatternFn = Callable[[str, random.Random], Snippet]


# ===========================================================================
# Real bugs
# ===========================================================================


def npd_interface_alias(uid: str, rng: random.Random) -> Snippet:
    """Fig. 1: ``dev->plat_dev = pdev; if (!dev->plat_dev) use(pdev)``.
    The probe function is only reachable through a driver-ops struct, so
    points-to-based tools see an empty set for ``pdev``."""
    s = Snippet(pattern="npd_interface_alias")
    dev = _devname(rng)
    s.extend(f"""
struct pd_{uid} {{ int irq; int id; }};
struct ctx_{uid} {{ struct pd_{uid} *plat_dev; int state; }};
static struct ctx_{uid} g_ctx_{uid};

static int {dev}_probe_{uid}(struct pd_{uid} *pdev) {{
    struct ctx_{uid} *dev = &g_ctx_{uid};
    dev->plat_dev = pdev;""")
    start, end = s.extend(f"""
    if (!dev->plat_dev) {{
        int code = pdev->irq;
        report_error(code);
        return -19;
    }}""")
    s.bug(BugKind.NPD, start, end, aliasing=True, path_sensitive=True)
    s.extend(f"""
    dev->state = 1;
    return 0;
}}

struct drv_{uid} {{ int (*probe)(struct pd_{uid} *p); }};
static struct drv_{uid} {dev}_driver_{uid} = {{ .probe = {dev}_probe_{uid} }};""")
    return s


def npd_callee_field_alias(uid: str, rng: random.Random) -> Snippet:
    """Fig. 3: null check of ``model->user_data`` in one function; a callee
    re-loads the same field and dereferences."""
    s = Snippet(pattern="npd_callee_field_alias")
    dev = _devname(rng)
    s.extend(f"""
struct srv_{uid} {{ int frnd; int relay; }};
struct model_{uid} {{ struct srv_{uid} *user_data; int id; }};

static void send_status_{uid}(struct model_{uid} *model) {{
    struct srv_{uid} *cfg = model->user_data;""")
    start, end = s.extend(f"""
    int val = cfg->frnd;
    emit_status(val);""")
    s.bug(BugKind.NPD, start, end, aliasing=True, interprocedural=True, path_sensitive=True)
    s.extend(f"""
}}

static void {dev}_set_{uid}(struct model_{uid} *model) {{
    struct srv_{uid} *cfg = model->user_data;
    if (!cfg) {{
        log_warn();
        goto send_{uid};
    }}
    cfg->relay = 1;
send_{uid}:
    send_status_{uid}(model);
}}

struct mops_{uid} {{ void (*set)(struct model_{uid} *m); }};
static struct mops_{uid} ops_{uid} = {{ .set = {dev}_set_{uid} }};""")
    return s


def npd_error_path_local(uid: str, rng: random.Random) -> Snippet:
    """Intra-procedural dereference inside the NULL branch (dev_err(&pdev->dev)
    style) — the easy pattern every tool should find."""
    s = Snippet(pattern="npd_error_path_local")
    dev = _devname(rng)
    s.extend(f"""
struct res_{uid} {{ int base; int size; }};

int {dev}_map_{uid}(struct res_{uid} *res) {{""")
    start, end = s.extend(f"""
    if (!res) {{
        int lost = res->size;
        report_error(lost);
        return -22;
    }}""")
    s.bug(BugKind.NPD, start, end, path_sensitive=True)
    s.extend(f"""
    return res->base;
}}""")
    return s


def npd_callee_deref_after_check(uid: str, rng: random.Random) -> Snippet:
    """Fig. 12(a): caller checks ``d->mdsi`` but still calls a helper that
    dereferences it unconditionally."""
    s = Snippet(pattern="npd_callee_deref_after_check")
    dev = _devname(rng)
    s.extend(f"""
struct dsi_{uid} {{ int lanes; int mode_flags; }};
struct host_{uid} {{ struct dsi_{uid} *mdsi; int val; }};

static void {dev}_start_{uid}(struct host_{uid} *d) {{""")
    start, end = s.extend(f"""
    if (d->mdsi->lanes == 2)
        d->val = d->val | 4;""")
    s.bug(BugKind.NPD, start, end, aliasing=True, interprocedural=True, path_sensitive=True)
    s.extend(f"""
}}

static int {dev}_bind_{uid}(struct host_{uid} *d) {{
    if (d->mdsi)
        d->val = 1;
    {dev}_start_{uid}(d);
    return 0;
}}

struct comp_{uid} {{ int (*bind)(struct host_{uid} *d); }};
static struct comp_{uid} comp_ops_{uid} = {{ .bind = {dev}_bind_{uid} }};""")
    return s


def npd_sendto_cast_alias(uid: str, rng: random.Random) -> Snippet:
    """Fig. 12(b): pointer may be NULL past a compound check, is cast to
    another type (alias through MOVE) and dereferenced."""
    s = Snippet(pattern="npd_sendto_cast_alias")
    s.extend(f"""
struct addr_{uid} {{ int family; int ifindex; }};
struct msg_{uid} {{ int len; }};

int ctx_sendto_{uid}(struct addr_{uid} *dst_addr, struct msg_{uid} *msghdr) {{
    if (!dst_addr && !msghdr)
        return -89;
    struct addr_{uid} *ll_addr = dst_addr;""")
    start, end = s.extend(f"""
    if (ll_addr->ifindex < 0)
        return -6;""")
    s.bug(BugKind.NPD, start, end, aliasing=True, path_sensitive=True)
    s.extend(f"""
    return ll_addr->family;
}}

struct sock_ops_{uid} {{ int (*sendto)(struct addr_{uid} *a, struct msg_{uid} *m); }};
static struct sock_ops_{uid} sops_{uid} = {{ .sendto = ctx_sendto_{uid} }};""")
    return s


def uva_heap_field_callee(uid: str, rng: random.Random) -> Snippet:
    """Fig. 12(d): kmalloc'd control block; a field is read (through an
    alias, in a callee) before anything initializes it."""
    s = Snippet(pattern="uva_heap_field_callee")
    dev = _devname(rng)
    s.extend(f"""
struct tcb_{uid} {{ int type; int prio; }};

static int verify_{uid}(struct tcb_{uid} *obj) {{""")
    start, end = s.extend(f"""
    return obj->type == 7;""")
    s.bug(BugKind.UVA, start, end, aliasing=True, interprocedural=True)
    s.extend(f"""
}}

int {dev}_create_{uid}(int prio) {{
    struct tcb_{uid} *ctl = kmalloc(sizeof(struct tcb_{uid}));
    if (!ctl)
        return -12;
    int rc = verify_{uid}(ctl);
    ctl->prio = prio;
    kfree(ctl);
    return rc;
}}""")
    return s


def uva_scalar_feasible(uid: str, rng: random.Random) -> Snippet:
    """A scalar initialized on only one branch and used afterwards — the
    uninitialized path is feasible (no correlation saves it)."""
    s = Snippet(pattern="uva_scalar_feasible")
    dev = _devname(rng)
    s.extend(f"""
int {dev}_speed_{uid}(int mode, int cfg) {{
    int rate;
    if (mode == 3)
        rate = cfg * 2;""")
    start, end = s.extend(f"""
    return rate + 1;""")
    s.bug(BugKind.UVA, start, end, path_sensitive=True)
    s.extend("}")
    return s


def ml_error_path(uid: str, rng: random.Random) -> Snippet:
    """Fig. 12(c): allocation leaked on an error return."""
    s = Snippet(pattern="ml_error_path")
    dev = _devname(rng)
    s.extend(f"""
int make_msg_{uid}(int size) {{
    char *message = malloc(size);
    if (message == NULL)
        return -1;
    int n = format_into_{uid}(size);""")
    start, end = s.extend(f"""
    if (n < 0)
        return -5;""")
    s.bug(BugKind.ML, start, end, path_sensitive=True)
    s.extend(f"""
    consume_buffer(message);
    free(message);
    return 0;
}}

static int format_into_{uid}(int size) {{
    if (size > 64)
        return -1;
    return size;
}}""")
    return s


def ml_callee_alloc(uid: str, rng: random.Random) -> Snippet:
    """The allocation happens in a helper; the caller drops the result on
    an error path — needs inter-procedural reasoning."""
    s = Snippet(pattern="ml_callee_alloc")
    dev = _devname(rng)
    s.extend(f"""
static char *grab_{uid}(int n) {{
    char *p = kmalloc(n);
    return p;
}}

int {dev}_setup_{uid}(int n, int flags) {{
    char *buf = grab_{uid}(n);
    if (!buf)
        return -12;""")
    start, end = s.extend(f"""
    if (flags & 8)
        return -22;""")
    s.bug(BugKind.ML, start, end, interprocedural=True, path_sensitive=True)
    s.extend(f"""
    consume_buffer(buf);
    kfree(buf);
    return 0;
}}""")
    return s


def ml_never_freed(uid: str, rng: random.Random) -> Snippet:
    """A scratch allocation that is used directly and dropped on every
    path — the whole-function leak that even path-insensitive tools
    (Cppcheck, Infer, Saber) can see."""
    s = Snippet(pattern="ml_never_freed")
    dev = _devname(rng)
    s.extend(f"""
int {dev}_scratch_{uid}(int n) {{
    int *scratch = kmalloc(n * 4);
    if (!scratch)
        return -12;
    *scratch = n;
    int out = *scratch + 1;""")
    start, end = s.extend(f"""
    return out;""")
    s.bug(BugKind.ML, start, end)
    s.extend("}")
    return s


def dl_double_lock(uid: str, rng: random.Random) -> Snippet:
    """§5.5 double lock: a retry path re-acquires without releasing."""
    s = Snippet(pattern="dl_double_lock")
    dev = _devname(rng)
    s.extend(f"""
struct state_{uid} {{ int lock; int busy; }};
static struct state_{uid} st_{uid};

int {dev}_claim_{uid}(int tries) {{
    struct state_{uid} *s = &st_{uid};
    spin_lock(&s->lock);
    if (s->busy) {{""")
    start, end = s.extend(f"""
        spin_lock(&s->lock);""")
    s.bug(BugKind.DOUBLE_LOCK, start, end, aliasing=True, path_sensitive=True)
    s.extend(f"""
        s->busy = 0;
    }}
    spin_unlock(&s->lock);
    return 0;
}}""")
    return s


def aiu_unchecked_index(uid: str, rng: random.Random) -> Snippet:
    """§5.5 underflow: lookup may return -1, used as an index unchecked."""
    s = Snippet(pattern="aiu_unchecked_index")
    dev = _devname(rng)
    s.extend(f"""
static int slots_{uid}[16];

static int find_slot_{uid}(int key) {{
    if (key > 15)
        return -1;
    return key;
}}

int {dev}_get_{uid}(int key) {{
    int idx = find_slot_{uid}(key);""")
    start, end = s.extend(f"""
    return slots_{uid}[idx];""")
    s.bug(BugKind.ARRAY_UNDERFLOW, start, end, interprocedural=True, path_sensitive=True)
    s.extend("}")
    return s


def dbz_div_by_ret(uid: str, rng: random.Random) -> Snippet:
    """§5.5 division by zero: a count that can be zero divides a total."""
    s = Snippet(pattern="dbz_div_by_ret")
    dev = _devname(rng)
    s.extend(f"""
static int count_active_{uid}(int mask) {{
    if (mask == 0)
        return 0;
    return mask & 15;
}}

int {dev}_avg_{uid}(int total, int mask) {{
    int cnt = count_active_{uid}(mask);""")
    start, end = s.extend(f"""
    return total / cnt;""")
    s.bug(BugKind.DIV_BY_ZERO, start, end, interprocedural=True, path_sensitive=True)
    s.extend("}")
    return s


def npd_easy_uncompiled(uid: str, rng: random.Random) -> Snippet:
    """An easy intra-procedural NPD destined for *non-compiled* files:
    Cppcheck/Coccinelle (source-based) find it, PATA cannot (Table 8's
    "25 real bugs found by Cppcheck ... missed by PATA")."""
    s = Snippet(pattern="npd_easy_uncompiled")
    dev = _devname(rng)
    s.extend(f"""
struct opt_{uid} {{ int flag; int val; }};

int {dev}_opt_{uid}(struct opt_{uid} *o) {{""")
    start, end = s.extend(f"""
    if (o == NULL) {{
        int f = o->flag;
        return f;
    }}""")
    s.bug(BugKind.NPD, start, end, path_sensitive=True)
    s.extend(f"""
    return o->val;
}}""")
    return s


def npd_double_field_hop(uid: str, rng: random.Random) -> Snippet:
    """Two field hops: the nullable pointer sits one level down
    (``dev->port->ring`` style), stressing field-sensitive aliasing."""
    s = Snippet(pattern="npd_double_field_hop")
    dev = _devname(rng)
    s.extend(f"""
struct ring_d_{uid} {{ int head; int tail; }};
struct port_{uid} {{ struct ring_d_{uid} *ring; int index; }};

int {dev}_drain_{uid}(struct port_{uid} *port) {{
    struct ring_d_{uid} *r = port->ring;
    if (r == NULL) {{""")
    start, end = s.extend(f"""
        int lost = port->ring->head;
        report_error(lost);""")
    s.bug(BugKind.NPD, start, end, aliasing=True, path_sensitive=True)
    s.extend(f"""
        return -5;
    }}
    r->tail = r->head;
    return 0;
}}

struct pops_{uid} {{ int (*drain)(struct port_{uid} *p); }};
static struct pops_{uid} pops_v_{uid} = {{ .drain = {dev}_drain_{uid} }};""")
    return s


def uva_partial_memset(uid: str, rng: random.Random) -> Snippet:
    """The init helper is only called on one branch; the other path reads
    the raw allocation — inter-procedural, path-sensitive UVA."""
    s = Snippet(pattern="uva_partial_memset")
    dev = _devname(rng)
    s.extend(f"""
struct st_{uid} {{ int mode; int count; }};

static void reset_{uid}(struct st_{uid} *st) {{
    memset(st, 0, sizeof(struct st_{uid}));
}}

int {dev}_open_{uid}(int fresh) {{
    struct st_{uid} *st = kmalloc(sizeof(struct st_{uid}));
    if (!st)
        return -12;
    if (fresh)
        reset_{uid}(st);""")
    start, end = s.extend(f"""
    int mode = st->mode;""")
    s.bug(BugKind.UVA, start, end, interprocedural=True, path_sensitive=True)
    s.extend(f"""
    kfree(st);
    return mode;
}}""")
    return s


def ml_overwritten_pointer(uid: str, rng: random.Random) -> Snippet:
    """The only reference is overwritten by a second allocation — the
    first object is unreachable and never freed."""
    s = Snippet(pattern="ml_overwritten_pointer")
    dev = _devname(rng)
    s.extend(f"""
int {dev}_grow_{uid}(int n) {{
    char *buf = kmalloc(n);
    if (!buf)
        return -12;""")
    # The leak is caused by the overwrite but reported at the returns the
    # orphaned object is still live at — annotate through the function end.
    start, end = s.extend(f"""
    buf = kmalloc(n * 2);
    if (!buf)
        return -12;
    consume_buffer(buf);
    kfree(buf);
    return 0;
}}""")
    s.bug(BugKind.ML, start, end, path_sensitive=True)
    return s


def dl_unlock_twice_goto(uid: str, rng: random.Random) -> Snippet:
    """Double unlock through converging error paths (goto out after an
    explicit unlock)."""
    s = Snippet(pattern="dl_unlock_twice_goto")
    dev = _devname(rng)
    s.extend(f"""
struct gd_{uid} {{ int lock; int users; }};
static struct gd_{uid} gd_{uid}_state;

int {dev}_detach_{uid}(int force) {{
    struct gd_{uid} *g = &gd_{uid}_state;
    spin_lock(&g->lock);
    if (g->users > 0 && force == 0) {{
        spin_unlock(&g->lock);
        goto out_{uid};
    }}
    g->users = 0;
    spin_unlock(&g->lock);
out_{uid}:""")
    start, end = s.extend(f"""
    spin_unlock(&g->lock);""")
    s.bug(BugKind.DOUBLE_LOCK, start, end, aliasing=True, path_sensitive=True)
    s.extend(f"""
    return 0;
}}""")
    return s


def aiu_subtraction_index(uid: str, rng: random.Random) -> Snippet:
    """Index computed by subtraction without a lower-bound check."""
    s = Snippet(pattern="aiu_subtraction_index")
    dev = _devname(rng)
    s.extend(f"""
static int window_{uid}[32];

int {dev}_lag_{uid}(int head, int delay) {{
    int pos = head - delay;""")
    start, end = s.extend(f"""
    return window_{uid}[pos];""")
    s.bug(BugKind.ARRAY_UNDERFLOW, start, end, path_sensitive=True)
    s.extend("}")
    return s


def dbz_ratio_of_counts(uid: str, rng: random.Random) -> Snippet:
    """Division by a difference the zero case of which is reachable."""
    s = Snippet(pattern="dbz_ratio_of_counts")
    dev = _devname(rng)
    s.extend(f"""
static int active_{uid}(int total, int idle) {{
    if (idle > total)
        return 0;
    return total - idle;
}}

int {dev}_load_{uid}(int work, int total, int idle) {{
    int busy = active_{uid}(total, idle);""")
    start, end = s.extend(f"""
    return work / busy;""")
    s.bug(BugKind.DIV_BY_ZERO, start, end, interprocedural=True, path_sensitive=True)
    s.extend("}")
    return s


# ===========================================================================
# Extension patterns (not injected by default): exercised only when the
# §7 function-pointer extension is enabled.
# ===========================================================================


def npd_indirect_dispatch(uid: str, rng: random.Random) -> Snippet:
    """A NULL pointer flows into its dereference only through a
    function-pointer call; published PATA misses it (§7 limitation),
    the ``resolve_function_pointers`` extension finds it."""
    s = Snippet(pattern="npd_indirect_dispatch")
    dev = _devname(rng)
    s.extend(f"""
struct pkt_{uid} {{ int len; int proto; }};
struct hops_{uid} {{ int (*consume)(struct pkt_{uid} *p); }};

static int raw_consume_{uid}(struct pkt_{uid} *p) {{""")
    start, end = s.extend(f"""
    return p->len;""")
    s.bug(BugKind.NPD, start, end, aliasing=True, interprocedural=True, path_sensitive=True)
    s.extend(f"""
}}
static struct hops_{uid} raw_ops_{uid} = {{ .consume = raw_consume_{uid} }};

int {dev}_rx_{uid}(struct hops_{uid} *ops, struct pkt_{uid} *p) {{
    if (!p)
        return ops->consume(p);
    return p->proto;
}}
struct rxreg_{uid} {{ int (*rx)(struct hops_{uid} *o, struct pkt_{uid} *p); }};
static struct rxreg_{uid} rxr_{uid} = {{ .rx = {dev}_rx_{uid} }};""")
    return s


EXTENSION_PATTERNS: List[PatternFn] = [npd_indirect_dispatch]


# ===========================================================================
# Bait: infeasible-path false bugs that stage 2 must drop
# ===========================================================================


def bait_contradictory_fields(uid: str, rng: random.Random) -> Snippet:
    """Fig. 9: ``if (q==NULL) p->f = 0; ... if (t->f != 0) use q`` — the
    "bug" path needs p->f==0 and t->f!=0 with t==p: infeasible."""
    s = Snippet(pattern="bait_contradictory_fields")
    dev = _devname(rng)
    start, end = s.extend(f"""
struct fb_{uid} {{ int f; }};

int {dev}_sync_{uid}(struct fb_{uid} *p, struct fb_{uid} *q) {{
    if (q == NULL)
        p->f = 0;
    struct fb_{uid} *t = p;
    if (t->f != 0) {{
        int v = q->f;
        return v;
    }}
    return 0;
}}

struct fb_ops_{uid} {{ int (*sync)(struct fb_{uid} *p, struct fb_{uid} *q); }};
static struct fb_ops_{uid} fb_ops_v_{uid} = {{ .sync = {dev}_sync_{uid} }};""")
    s.bait(BugKind.NPD, start, end)
    return s


def bait_flag_guard(uid: str, rng: random.Random) -> Snippet:
    """Correlated flag: ``ok`` is 1 exactly when p was non-NULL; the
    guarded dereference is safe, but path-insensitive tools can't see it."""
    s = Snippet(pattern="bait_flag_guard")
    dev = _devname(rng)
    start, end = s.extend(f"""
struct buf_{uid} {{ int len; }};

int {dev}_emit_{uid}(struct buf_{uid} *p) {{
    int ok = 0;
    if (p != NULL)
        ok = 1;
    accounting_tick();
    if (ok) {{
        int n = p->len;
        return n;
    }}
    return 0;
}}""")
    s.bait(BugKind.NPD, start, end)
    return s


def bait_uva_correlated(uid: str, rng: random.Random) -> Snippet:
    """The same condition guards init and use: never uninitialized."""
    s = Snippet(pattern="bait_uva_correlated")
    dev = _devname(rng)
    start, end = s.extend(f"""
int {dev}_scale_{uid}(int mode, int raw) {{
    int cooked;
    if (mode > 2)
        cooked = raw * 3;
    accounting_tick();
    if (mode > 2)
        return cooked;
    return raw;
}}""")
    s.bait(BugKind.UVA, start, end)
    return s


def bait_ml_conditional_free(uid: str, rng: random.Random) -> Snippet:
    """Correct allocate/free pairing across branches — linear-scan ML
    checkers misread it."""
    s = Snippet(pattern="bait_ml_conditional_free")
    dev = _devname(rng)
    start, end = s.extend(f"""
int {dev}_stage_{uid}(int n) {{
    char *tmp = kmalloc(n);
    if (!tmp)
        return -12;
    if (n > 128) {{
        kfree(tmp);
        return -7;
    }}
    consume_buffer(tmp);
    kfree(tmp);
    return 0;
}}""")
    s.bait(BugKind.ML, start, end)
    return s


def bait_checked_return(uid: str, rng: random.Random) -> Snippet:
    """``if (!p) return``; the later dereference is safe."""
    s = Snippet(pattern="bait_checked_return")
    dev = _devname(rng)
    start, end = s.extend(f"""
struct cfgv_{uid} {{ int mode; }};

int {dev}_mode_{uid}(struct cfgv_{uid} *c) {{
    if (!c)
        return -22;
    log_debug();
    return c->mode;
}}""")
    s.bait(BugKind.NPD, start, end)
    return s


def bait_loop_init(uid: str, rng: random.Random) -> Snippet:
    """§5.2 FP source: initialization on the *second* loop iteration.
    PATA unrolls loops once, so it keeps a false UVA that feasibility
    checking cannot discharge (the loop-exit branch is havocked)."""
    s = Snippet(pattern="bait_loop_init")
    dev = _devname(rng)
    start, end = s.extend(f"""
int {dev}_warm_{uid}(int base) {{
    int seed;
    for (int i = 0; i < 4; i++) {{
        if (i == 1)
            seed = base + i;
        accounting_tick();
    }}
    return seed;
}}""")
    s.bait(BugKind.UVA, start, end)
    return s


def bait_array_index_alias(uid: str, rng: random.Random) -> Snippet:
    """§5.2 FP source: ``array[j]`` initialized, ``array[i+1]`` read with
    ``j == i+1`` — distinct access paths in PATA's array-insensitive
    aliasing, so the read looks uninitialized."""
    s = Snippet(pattern="bait_array_index_alias")
    dev = _devname(rng)
    start, end = s.extend(f"""
int {dev}_slot_{uid}(int i) {{
    int table[8];
    int j = i + 1;
    table[j] = 42;
    return table[i + 1];
}}""")
    s.bait(BugKind.UVA, start, end)
    return s


def bait_loop_guarded_null(uid: str, rng: random.Random) -> Snippet:
    """§5.2 FP source: the pointer is re-validated inside every loop
    iteration; with one unroll the re-check of the second iteration is
    havocked and a stale NULL fact can survive in some tools."""
    s = Snippet(pattern="bait_loop_guarded_null")
    dev = _devname(rng)
    start, end = s.extend(f"""
struct cell_{uid} {{ struct cell_{uid} *next; int v; }};

int {dev}_sum_{uid}(struct cell_{uid} *head) {{
    int sum = 0;
    struct cell_{uid} *cur = head;
    while (cur != NULL) {{
        sum = sum + cur->v;
        cur = cur->next;
    }}
    if (head == NULL)
        return 0;
    return sum + head->v;
}}""")
    s.bait(BugKind.NPD, start, end)
    return s


# ===========================================================================
# Clean fillers (no ground truth, no bait: realistic bulk)
# ===========================================================================


def filler_ops(uid: str, rng: random.Random) -> Snippet:
    """Filler: register-file read/update helpers."""
    s = Snippet(pattern="filler_ops")
    dev = _devname(rng)
    n = rng.randint(2, 5)
    s.extend(f"""
struct regs_{uid} {{ int ctrl; int status; int mask; }};
static struct regs_{uid} hw_{uid};

static int {dev}_read_{uid}(int off) {{
    struct regs_{uid} *r = &hw_{uid};
    if (off == 0)
        return r->ctrl;
    if (off == 1)
        return r->status;
    return r->mask;
}}

int {dev}_update_{uid}(int off, int val) {{
    struct regs_{uid} *r = &hw_{uid};
    int old = {dev}_read_{uid}(off);
    if (val == old)
        return 0;
    r->ctrl = val;
    for (int i = 0; i < {n}; i++)
        r->status = r->status + 1;
    return old;
}}""")
    return s


def filler_list(uid: str, rng: random.Random) -> Snippet:
    """Filler: singly linked list walkers."""
    s = Snippet(pattern="filler_list")
    dev = _devname(rng)
    s.extend(f"""
struct node_{uid} {{ struct node_{uid} *next; int key; }};
static struct node_{uid} *head_{uid};

int {dev}_count_{uid}(int limit) {{
    struct node_{uid} *cur = head_{uid};
    int count = 0;
    while (cur != NULL) {{
        count = count + 1;
        if (count >= limit)
            break;
        cur = cur->next;
    }}
    return count;
}}

int {dev}_find_{uid}(int key) {{
    struct node_{uid} *cur = head_{uid};
    while (cur != NULL) {{
        if (cur->key == key)
            return 1;
        cur = cur->next;
    }}
    return 0;
}}""")
    return s


def filler_locked_update(uid: str, rng: random.Random) -> Snippet:
    """Filler: correctly locked accounting updates."""
    s = Snippet(pattern="filler_locked_update")
    dev = _devname(rng)
    s.extend(f"""
struct acct_{uid} {{ int lock; int packets; int bytes; }};
static struct acct_{uid} acct_{uid}_state;

void {dev}_account_{uid}(int nbytes) {{
    struct acct_{uid} *a = &acct_{uid}_state;
    spin_lock(&a->lock);
    a->packets = a->packets + 1;
    a->bytes = a->bytes + nbytes;
    spin_unlock(&a->lock);
}}

int {dev}_stats_{uid}(int which) {{
    struct acct_{uid} *a = &acct_{uid}_state;
    int out;
    spin_lock(&a->lock);
    if (which == 0)
        out = a->packets;
    else
        out = a->bytes;
    spin_unlock(&a->lock);
    return out;
}}""")
    return s


def filler_parser(uid: str, rng: random.Random) -> Snippet:
    """Filler: a token parser with a switch and a loop."""
    s = Snippet(pattern="filler_parser")
    dev = _devname(rng)
    s.extend(f"""
int {dev}_parse_{uid}(int token, int depth) {{
    int result = 0;
    switch (token) {{
    case 1:
        result = depth + 1;
        break;
    case 2:
        result = depth * 2;
        break;
    default:
        result = depth;
        break;
    }}
    if (result > 100)
        result = 100;
    return result;
}}

int {dev}_scan_{uid}(int start, int len) {{
    int sum = 0;
    for (int i = start; i < start + len; i++) {{
        int piece = {dev}_parse_{uid}(i % 3, i);
        sum = sum + piece;
    }}
    return sum;
}}""")
    return s


def filler_ring(uid: str, rng: random.Random) -> Snippet:
    """Filler: a fixed-size ring buffer."""
    s = Snippet(pattern="filler_ring")
    dev = _devname(rng)
    size = rng.choice([8, 16, 32])
    s.extend(f"""
struct ring_{uid} {{ int data[{size}]; int head; int tail; }};
static struct ring_{uid} rb_{uid};

int {dev}_push_{uid}(int value) {{
    struct ring_{uid} *r = &rb_{uid};
    int next = (r->head + 1) % {size};
    if (next == r->tail)
        return -105;
    r->data[r->head] = value;
    r->head = next;
    return 0;
}}

int {dev}_pop_{uid}(void) {{
    struct ring_{uid} *r = &rb_{uid};
    if (r->head == r->tail)
        return -11;
    int value = r->data[r->tail];
    r->tail = (r->tail + 1) % {size};
    return value;
}}""")
    return s


def filler_pool(uid: str, rng: random.Random) -> Snippet:
    """Modules publishing and consuming heap objects through the
    OS-wide shared pool ``g_pool_head`` (same global in every file).

    This is what makes whole-OS points-to analysis explode: every
    module's allocations flow into one points-to set that every module's
    readers then pull back, so Andersen's set entries grow ~quadratically
    with the number of modules — the Saber/SVF OOM of §6."""
    s = Snippet(pattern="filler_pool")
    dev = _devname(rng)
    s.extend(f"""
struct pool_ent {{ struct pool_ent *next; int tag; int payload; }};

int {dev}_publish_{uid}(int tag) {{
    struct pool_ent *ent = kzalloc(sizeof(struct pool_ent));
    if (!ent)
        return -12;
    ent->tag = tag;
    ent->next = g_pool_head;
    g_pool_head = ent;
    return 0;
}}

int {dev}_consume_{uid}(int tag) {{
    struct pool_ent *cur = g_pool_head;
    while (cur != NULL) {{
        if (cur->tag == tag)
            return cur->payload;
        cur = cur->next;
    }}
    return -2;
}}""")
    return s


# ===========================================================================
# Registry
def tnt_index_from_user(uid: str, rng: random.Random) -> Snippet:
    """Taint: a user-supplied index reaches a table unchecked; the
    range-checked sibling is bait (stage 2 discharges it as UNSAT)."""
    s = Snippet(pattern="tnt_index_from_user")
    dev = _devname(rng)
    s.extend(f"""
static int lut_{uid}[16];
int read_user_idx_{uid}(void);

int {dev}_peek_{uid}(void) {{
    int idx = read_user_idx_{uid}();""")
    start, end = s.extend(f"""
    return lut_{uid}[idx];""")
    s.bug(BugKind.TAINT, start, end, path_sensitive=True)
    s.extend("}")
    bait_start, bait_end = s.extend(f"""
int {dev}_peek_safe_{uid}(void) {{
    int idx = read_user_idx_{uid}();
    if (idx < 0)
        return -1;
    if (idx > 15)
        return -1;
    return lut_{uid}[idx];
}}""")
    s.bait(BugKind.TAINT, bait_start, bait_end)
    return s


def tnt_alloc_len_field(uid: str, rng: random.Random) -> Snippet:
    """Taint through a field alias: a callee stores user input into
    ``r->len``; the caller allocates ``q->len`` bytes — the flow is only
    visible when ``q`` and ``r`` share an alias class."""
    s = Snippet(pattern="tnt_alloc_len_field")
    dev = _devname(rng)
    s.extend(f"""
struct ureq_{uid} {{ int len; int mode; }};
int read_user_len_{uid}(void);

static void fetch_len_{uid}(struct ureq_{uid} *r) {{
    r->len = read_user_len_{uid}();
}}

int {dev}_prep_{uid}(struct ureq_{uid} *q) {{
    fetch_len_{uid}(q);
    int n = q->len;""")
    start, end = s.extend(f"""
    char *buf = kmalloc(n);""")
    s.bug(BugKind.TAINT, start, end, interprocedural=True, aliasing=True)
    s.extend(f"""
    if (buf == NULL)
        return -1;
    consume_buffer(buf);
    free(buf);
    return 0;
}}""")
    return s


def tnt_div_copy_from_user(uid: str, rng: random.Random) -> Snippet:
    """Taint through an out-buffer: ``copy_from_user(&chunk, ...)``
    overwrites an initialized local through its address, then the local
    divides — needs the deref-node taint *and* the translator's source
    havoc (or the stale ``chunk == 1`` would hide the zero divisor)."""
    s = Snippet(pattern="tnt_div_copy_from_user")
    dev = _devname(rng)
    s.extend(f"""
int copy_from_user_{uid}(int *dst, int len);

int {dev}_ratio_{uid}(int total) {{
    int chunk = 1;
    copy_from_user_{uid}(&chunk, 4);""")
    start, end = s.extend(f"""
    return total / chunk;""")
    s.bug(BugKind.TAINT, start, end, aliasing=True, path_sensitive=True)
    s.extend("}")
    bait_start, bait_end = s.extend(f"""
int {dev}_ratio_safe_{uid}(int total) {{
    int chunk = 1;
    copy_from_user_{uid}(&chunk, 4);
    if (chunk == 0)
        return 0;
    return total / chunk;
}}""")
    s.bait(BugKind.TAINT, bait_start, bait_end)
    return s


def tnt_memcpy_len(uid: str, rng: random.Random) -> Snippet:
    """Taint: a user-supplied count reaches a memset length unchecked;
    the bounded sibling is bait."""
    s = Snippet(pattern="tnt_memcpy_len")
    dev = _devname(rng)
    s.extend(f"""
int read_user_cnt_{uid}(void);

int {dev}_fill_{uid}(char *buf) {{
    int n = read_user_cnt_{uid}();""")
    start, end = s.extend(f"""
    memset(buf, 0, n);""")
    s.bug(BugKind.TAINT, start, end, path_sensitive=True)
    s.extend(f"""
    return n;
}}""")
    bait_start, bait_end = s.extend(f"""
int {dev}_fill_safe_{uid}(char *buf) {{
    int n = read_user_cnt_{uid}();
    if (n > 4096)
        return -1;
    memset(buf, 0, n);
    return n;
}}""")
    s.bait(BugKind.TAINT, bait_start, bait_end)
    return s


def race_unlocked_counter(uid: str, rng: random.Random) -> Snippet:
    """Race: the reader takes the lock, the writer forgot — the classic
    lockset violation (disjoint locksets, one side writes)."""
    s = Snippet(pattern="race_unlocked_counter")
    dev = _devname(rng)
    s.extend(f"""
struct rc_{uid} {{ int lock; int count; }};
static struct rc_{uid} g_rc_{uid};

int {dev}_rd_{uid}(void) {{
    struct rc_{uid} *s = &g_rc_{uid};
    spin_lock(&s->lock);
    int seen = s->count;
    spin_unlock(&s->lock);
    return seen;
}}
""")
    start, end = s.extend(f"""
void {dev}_tick_{uid}(void) {{
    struct rc_{uid} *s = &g_rc_{uid};
    s->count = s->count + 1;
}}""")
    s.bug(BugKind.RACE, start, end, aliasing=True)
    return s


def race_two_locks_wrong_lock(uid: str, rng: random.Random) -> Snippet:
    """Race: both sides lock diligently — but different locks.  Only a
    lock-*identity*-aware (alias-canonicalized) lockset catches this."""
    s = Snippet(pattern="race_two_locks_wrong_lock")
    dev = _devname(rng)
    s.extend(f"""
struct tl_{uid} {{ int alock; int block; int stat; }};
static struct tl_{uid} g_tl_{uid};

int {dev}_geta_{uid}(void) {{
    struct tl_{uid} *s = &g_tl_{uid};
    spin_lock(&s->alock);
    int v = s->stat;
    spin_unlock(&s->alock);
    return v;
}}
""")
    start, end = s.extend(f"""
void {dev}_setb_{uid}(int v) {{
    struct tl_{uid} *s = &g_tl_{uid};
    spin_lock(&s->block);
    s->stat = v;
    spin_unlock(&s->block);
}}""")
    s.bug(BugKind.RACE, start, end, aliasing=True)
    return s


def race_published_heap(uid: str, rng: random.Random) -> Snippet:
    """Race on an escaping heap object: pre-publication init is keyed to
    the allocation site (race-free by construction); once the pointer is
    stored to a global, unlocked field updates race with readers."""
    s = Snippet(pattern="race_published_heap")
    dev = _devname(rng)
    s.extend(f"""
struct pkt_{uid} {{ int seq; int len; }};
static struct pkt_{uid} *g_cur_{uid};

int {dev}_open_{uid}(void) {{
    struct pkt_{uid} *p = kzalloc(sizeof(struct pkt_{uid}));
    if (!p)
        return -12;
    p->seq = 0;
    g_cur_{uid} = p;
    return 0;
}}
""")
    start, _ = s.extend(f"""
int {dev}_poll_{uid}(void) {{
    struct pkt_{uid} *p = g_cur_{uid};
    if (!p)
        return -11;
    return p->seq;
}}
""")
    _, end = s.extend(f"""
void {dev}_bump_{uid}(void) {{
    struct pkt_{uid} *p = g_cur_{uid};
    if (p)
        p->seq = p->seq + 1;
}}""")
    # One root cause, several conflicting pairs (pointer + field): the
    # whole reader/updater region is one ground-truth bug.
    s.bug(BugKind.RACE, start, end, aliasing=True, interprocedural=True)
    return s


def race_bait_locked(uid: str, rng: random.Random) -> Snippet:
    """Bait: both sides hold the *same* lock — lock canonicalization must
    resolve ``&s->lock`` on both paths to one identity and stay silent."""
    s = Snippet(pattern="race_bait_locked")
    dev = _devname(rng)
    start, end = s.extend(f"""
struct pr_{uid} {{ int lock; int hits; }};
static struct pr_{uid} g_pr_{uid};

int {dev}_rd_{uid}(void) {{
    struct pr_{uid} *s = &g_pr_{uid};
    spin_lock(&s->lock);
    int v = s->hits;
    spin_unlock(&s->lock);
    return v;
}}

void {dev}_add_{uid}(int n) {{
    struct pr_{uid} *s = &g_pr_{uid};
    spin_lock(&s->lock);
    s->hits = s->hits + n;
    spin_unlock(&s->lock);
}}""")
    s.bait(BugKind.RACE, start, end)
    return s


def race_bait_flag_guarded(uid: str, rng: random.Random) -> Snippet:
    """Bait: writer and reader are serialized by a mode flag — the two
    accesses sit on paths whose guards contradict (``g_mode != 0`` vs
    ``g_mode == 0``), so the pair is infeasible.  A lockset-only tool
    (``eraser_like``) reports it; stage 2 conjoins both paths'
    constraints, bridges the flag, and discharges the pair as UNSAT."""
    s = Snippet(pattern="race_bait_flag_guarded")
    dev = _devname(rng)
    start, end = s.extend(f"""
static int g_mode_{uid};
static int g_stash_{uid};

void {dev}_save_{uid}(int v) {{
    if (g_mode_{uid} != 0)
        g_stash_{uid} = v;
}}

int {dev}_load_{uid}(void) {{
    if (g_mode_{uid} == 0)
        return g_stash_{uid};
    return 0;
}}""")
    s.bait(BugKind.RACE, start, end)
    return s


# ===========================================================================

BUG_PATTERNS: Dict[str, List[PatternFn]] = {
    "NPD": [
        npd_interface_alias,
        npd_callee_field_alias,
        npd_error_path_local,
        npd_callee_deref_after_check,
        npd_sendto_cast_alias,
        npd_double_field_hop,
    ],
    "UVA": [uva_heap_field_callee, uva_scalar_feasible, uva_partial_memset],
    "ML": [ml_error_path, ml_callee_alloc, ml_never_freed, ml_overwritten_pointer],
    "DL": [dl_double_lock, dl_unlock_twice_goto],
    "AIU": [aiu_unchecked_index, aiu_subtraction_index],
    "DBZ": [dbz_div_by_ret, dbz_ratio_of_counts],
    "TNT": [
        tnt_index_from_user,
        tnt_alloc_len_field,
        tnt_div_copy_from_user,
        tnt_memcpy_len,
    ],
    # The two bait-only patterns ride in the RACE draw pool (not in
    # BAIT_PATTERNS: that list feeds every historical profile's rng
    # stream, and growing it would shift their generated corpora).
    "RACE": [
        race_unlocked_counter,
        race_two_locks_wrong_lock,
        race_published_heap,
        race_bait_locked,
        race_bait_flag_guarded,
    ],
}

BAIT_PATTERNS: List[PatternFn] = [
    bait_contradictory_fields,
    bait_flag_guard,
    bait_uva_correlated,
    bait_ml_conditional_free,
    bait_checked_return,
    bait_loop_init,
    bait_array_index_alias,
    bait_loop_guarded_null,
]

FILLER_PATTERNS: List[PatternFn] = [
    filler_ops,
    filler_list,
    filler_locked_update,
    filler_parser,
    filler_ring,
    filler_pool,
]

UNCOMPILED_BUG_PATTERNS: List[PatternFn] = [npd_easy_uncompiled]


# ===========================================================================
# Cross-module taint (P2.6): multi-file patterns
# ===========================================================================
#
# Each pattern returns a *list* of snippets, one per module; the
# generator appends them to distinct already-generated files from its
# own rng stream, after the per-file loop (see ``_inject_cross_module``)
# — so every historical profile's bytes are untouched.  The pieces
# share a global declared in both files: the frontend unifies globals
# by name (the ``g_pool_head`` precedent), and that shared cell is
# exactly the channel the P2.6 interface summaries export/import over.
# These registries are NEW — never append to the existing pools above,
# whose draw order feeds every historical profile's rng stream.

XPatternFn = Callable[[str, random.Random], List[Snippet]]


def xtnt_global_index(uid: str, rng: random.Random) -> List[Snippet]:
    """Writer image stores user input into a shared global; reader image
    indexes a table with it.  The range-checked sibling reader is bait
    (the P3 pair discharge proves the bridge atom unsatisfiable)."""
    writer = Snippet(pattern="xtnt_global_index")
    dev = _devname(rng)
    writer.extend(f"""
int g_xs_{uid};
int read_user_val_{uid}(void);

void {dev}_update_{uid}(void) {{
    int v = read_user_val_{uid}();
    g_xs_{uid} = v;
}}""")
    reader = Snippet(pattern="xtnt_global_index")
    dev2 = _devname(rng)
    reader.extend(f"""
int g_xs_{uid};
static int xlut_{uid}[16];

int {dev2}_peek_{uid}(void) {{
    int idx = g_xs_{uid};""")
    start, end = reader.extend(f"""
    return xlut_{uid}[idx];""")
    reader.bug(BugKind.TAINT, start, end, cross_module=True, path_sensitive=True)
    reader.extend("}")
    bait_start, bait_end = reader.extend(f"""
int {dev2}_peek_safe_{uid}(void) {{
    int idx = g_xs_{uid};
    if (idx < 0)
        return -1;
    if (idx > 15)
        return -1;
    return xlut_{uid}[idx];
}}""")
    reader.bait(BugKind.TAINT, bait_start, bait_end)
    return [writer, reader]


def xtnt_alloc_len(uid: str, rng: random.Random) -> List[Snippet]:
    """A user-supplied length crosses images through a shared global and
    reaches an allocation size unchecked."""
    writer = Snippet(pattern="xtnt_alloc_len")
    dev = _devname(rng)
    writer.extend(f"""
int g_xlen_{uid};
int read_user_len_{uid}(void);

void {dev}_cfg_{uid}(void) {{
    int n = read_user_len_{uid}();
    g_xlen_{uid} = n;
}}""")
    reader = Snippet(pattern="xtnt_alloc_len")
    dev2 = _devname(rng)
    reader.extend(f"""
int g_xlen_{uid};

int {dev2}_setup_{uid}(void) {{
    int n = g_xlen_{uid};""")
    start, end = reader.extend(f"""
    char *buf = kmalloc(n);""")
    reader.bug(BugKind.TAINT, start, end, cross_module=True)
    reader.extend(f"""
    if (buf == NULL)
        return -1;
    consume_buffer(buf);
    return 0;
}}""")
    return [writer, reader]


def xtnt_div(uid: str, rng: random.Random) -> List[Snippet]:
    """A user-supplied count crosses images and divides unchecked."""
    writer = Snippet(pattern="xtnt_div")
    dev = _devname(rng)
    writer.extend(f"""
int g_xdiv_{uid};
int read_user_cnt_{uid}(void);

void {dev}_tune_{uid}(void) {{
    int n = read_user_cnt_{uid}();
    g_xdiv_{uid} = n;
}}""")
    reader = Snippet(pattern="xtnt_div")
    dev2 = _devname(rng)
    reader.extend(f"""
int g_xdiv_{uid};

int {dev2}_avg_{uid}(int total) {{
    int d = g_xdiv_{uid};""")
    start, end = reader.extend(f"""
    return total / d;""")
    reader.bug(BugKind.TAINT, start, end, cross_module=True, path_sensitive=True)
    reader.extend("}")
    return [writer, reader]


def xtnt_relay_chain(uid: str, rng: random.Random) -> List[Snippet]:
    """Three images: source writes one global, a relay image copies it
    into a second, the sink image indexes with that — found only by the
    cross-module fixpoint (one matching round per hop)."""
    src = Snippet(pattern="xtnt_relay_chain")
    dev = _devname(rng)
    src.extend(f"""
int g_xsrc_{uid};
int read_user_val_{uid}(void);

void {dev}_feed_{uid}(void) {{
    g_xsrc_{uid} = read_user_val_{uid}();
}}""")
    relay = Snippet(pattern="xtnt_relay_chain")
    dev2 = _devname(rng)
    relay.extend(f"""
int g_xsrc_{uid};
int g_xmid_{uid};

void {dev2}_shuttle_{uid}(void) {{
    int t = g_xsrc_{uid};
    g_xmid_{uid} = t;
}}""")
    sink = Snippet(pattern="xtnt_relay_chain")
    dev3 = _devname(rng)
    sink.extend(f"""
int g_xmid_{uid};
static int rlut_{uid}[8];

int {dev3}_drain_{uid}(void) {{
    int i = g_xmid_{uid};""")
    start, end = sink.extend(f"""
    return rlut_{uid}[i];""")
    sink.bug(BugKind.TAINT, start, end, cross_module=True, interprocedural=True)
    sink.extend("}")
    return [src, relay, sink]


def xtnt_bait_mode_flag(uid: str, rng: random.Random) -> List[Snippet]:
    """Guard-contradicted pair: the writer only exports under
    ``mode != 0``, the reader only sinks under ``mode == 0`` — the
    conjoined pair constraints are UNSAT, so stage 2 stays silent."""
    writer = Snippet(pattern="xtnt_bait_mode_flag")
    dev = _devname(rng)
    writer.extend(f"""
int g_xmode_{uid};
int g_xv_{uid};
int read_user_val_{uid}(void);

void {dev}_arm_{uid}(void) {{
    if (g_xmode_{uid} != 0) {{
        int v = read_user_val_{uid}();
        g_xv_{uid} = v;
    }}
}}""")
    reader = Snippet(pattern="xtnt_bait_mode_flag")
    dev2 = _devname(rng)
    bait_start, bait_end = reader.extend(f"""
int g_xmode_{uid};
int g_xv_{uid};
static int mlut_{uid}[16];

int {dev2}_idle_{uid}(void) {{
    if (g_xmode_{uid} == 0) {{
        int i = g_xv_{uid};
        return mlut_{uid}[i];
    }}
    return 0;
}}""")
    reader.bait(BugKind.TAINT, bait_start, bait_end)
    return [writer, reader]


def xtnt_bait_const_global(uid: str, rng: random.Random) -> List[Snippet]:
    """Near-miss: the writer function calls a user-input intrinsic but
    stores only a *constant* into the shared global; the reader sinks
    it.  Module-granular grepping (the naive cross tier) flags the
    reader — the flow-tracking checker stays silent."""
    writer = Snippet(pattern="xtnt_bait_const_global")
    dev = _devname(rng)
    writer.extend(f"""
int g_xcal_{uid};
int read_user_val_{uid}(void);

void {dev}_calib_{uid}(void) {{
    int v = read_user_val_{uid}();
    emit_status(v);
    g_xcal_{uid} = 7;
}}""")
    reader = Snippet(pattern="xtnt_bait_const_global")
    dev2 = _devname(rng)
    bait_start, bait_end = reader.extend(f"""
int g_xcal_{uid};
static int clut_{uid}[16];

int {dev2}_lookup_{uid}(void) {{
    int i = g_xcal_{uid};
    return clut_{uid}[i];
}}""")
    reader.bait(BugKind.TAINT, bait_start, bait_end)
    return [writer, reader]


def xtnt_border_probe(uid: str, rng: random.Random) -> List[Snippet]:
    """Border source: a registered interface function with no extern
    caller takes a length parameter straight to an allocation.  Only
    found under ``--taint-borders`` (``requires.border=True`` keeps it
    out of default-config recall counts)."""
    s = Snippet(pattern="xtnt_border_probe")
    dev = _devname(rng)
    s.extend(f"""
struct xbdrv_{uid} {{ int id; }};

int {dev}_attach_{uid}(int len) {{""")
    start, end = s.extend(f"""
    char *buf = kmalloc(len);""")
    s.bug(BugKind.TAINT, start, end, border=True)
    s.extend(f"""
    if (buf == NULL)
        return -1;
    consume_buffer(buf);
    return 0;
}}

struct xdrv_{uid} {{ int (*probe)(int len); }};
static struct xdrv_{uid} {dev}_xdriver_{uid} = {{ .probe = {dev}_attach_{uid} }};""")
    return [s]


XTNT_FLOW_PATTERNS: List[XPatternFn] = [
    xtnt_global_index,
    xtnt_alloc_len,
    xtnt_div,
    xtnt_relay_chain,
]

XTNT_BAIT_PATTERNS: List[XPatternFn] = [
    xtnt_bait_mode_flag,
    xtnt_bait_const_global,
]

XTNT_BORDER_PATTERNS: List[XPatternFn] = [xtnt_border_probe]

#: external helpers the snippets call; declared once per file
COMMON_DECLS = """\
struct pool_ent;
struct pool_ent *g_pool_head;
void report_error(int code);
void emit_status(int val);
void log_warn(void);
void log_debug(void);
void accounting_tick(void);
void consume_buffer(char *buf);
"""
