"""Deterministic OS-tree generator.

Given an :class:`~repro.corpus.spec.OSProfile`, emits a tree of mini-C
files assembled from the pattern library, with exact ground truth for
every injected bug and bait region.  Same profile + seed ⇒ byte-identical
corpus, so benchmark numbers are reproducible.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ..typestate import BugKind
from .patterns import (
    BAIT_PATTERNS,
    BUG_PATTERNS,
    COMMON_DECLS,
    FILLER_PATTERNS,
    UNCOMPILED_BUG_PATTERNS,
    Snippet,
)
from .spec import (
    BaitRegion,
    GeneratedFile,
    GeneratedOS,
    GroundTruthBug,
    OSProfile,
)

_KIND_BY_NAME = {
    "NPD": BugKind.NPD,
    "UVA": BugKind.UVA,
    "ML": BugKind.ML,
    "DL": BugKind.DOUBLE_LOCK,
    "AIU": BugKind.ARRAY_UNDERFLOW,
    "DBZ": BugKind.DIV_BY_ZERO,
    "TNT": BugKind.TAINT,
    "RACE": BugKind.RACE,
}


def generate(profile: OSProfile, include_extended_kinds: bool = True) -> GeneratedOS:
    """Generate the OS tree for ``profile``.

    ``include_extended_kinds=False`` restricts injected bugs to the three
    primary kinds (NPD/UVA/ML) — used when benchmarking the three-checker
    configuration of §5.1 so recall is measured against reachable truth.
    """
    rng = random.Random(profile.seed)
    out = GeneratedOS(profile=profile)
    uid_counter = 0

    kind_names = list(profile.kind_mix)
    if not include_extended_kinds:
        kind_names = [k for k in kind_names if k in ("NPD", "UVA", "ML")]
    kind_weights = [profile.kind_mix[k] for k in kind_names]
    # Deterministic quota sampling: pick the kind furthest below its target
    # share, so the mix holds even for small corpora (independent draws
    # would starve low-weight kinds like ML at small scale).
    kind_counts = {k: 0 for k in kind_names}
    weight_sum = sum(kind_weights)

    def next_kind() -> str:
        total = sum(kind_counts.values()) + 1
        deficits = {
            k: (profile.kind_mix[k] / weight_sum) * total - kind_counts[k]
            for k in kind_names
        }
        chosen = max(sorted(deficits), key=lambda k: deficits[k])
        kind_counts[chosen] += 1
        return chosen

    directories = [entry[0] for entry in profile.layout]
    categories = {entry[0]: entry[1] for entry in profile.layout}
    dir_weights = [entry[2] for entry in profile.layout]

    for file_index in range(profile.total_files):
        directory = rng.choices(directories, weights=dir_weights, k=1)[0]
        category = categories[directory]
        compiled = rng.random() >= profile.excluded_fraction
        path = f"{profile.name}/{directory}/{_file_stem(rng)}_{file_index:04d}.c"
        lines: List[str] = [f"/* {profile.name} {profile.version_label} — generated module */"]
        lines.extend(COMMON_DECLS.rstrip("\n").split("\n"))
        snippet_count = rng.randint(*profile.snippets_per_file)
        bug_probability = profile.bug_rate.get(category, 0.05)
        for _ in range(snippet_count):
            uid_counter += 1
            uid = f"{profile.seed % 97}{uid_counter:05d}"
            roll = rng.random()
            if roll < bug_probability:
                if compiled:
                    snippet = rng.choice(BUG_PATTERNS[next_kind()])(uid, rng)
                else:
                    # Bugs in config-excluded files are the easy syntactic
                    # kind that source-based tools still see (Table 8).
                    snippet = rng.choice(UNCOMPILED_BUG_PATTERNS)(uid, rng)
            elif roll < bug_probability + profile.bait_rate / max(1, snippet_count):
                snippet = rng.choice(BAIT_PATTERNS)(uid, rng)
            else:
                snippet = rng.choice(FILLER_PATTERNS)(uid, rng)
            base = len(lines)
            lines.append("")
            base += 1
            lines.extend(snippet.lines)
            for kind, rel_start, rel_end, requirement in snippet.bugs:
                out.ground_truth.append(
                    GroundTruthBug(
                        uid=f"{profile.name}-{uid}",
                        kind=kind,
                        path=path,
                        line_start=base + rel_start + 1,
                        line_end=base + rel_end + 1,
                        requires=requirement,
                        category=category,
                        pattern=snippet.pattern,
                    )
                )
            for kind, rel_start, rel_end in snippet.baits:
                out.bait_regions.append(
                    BaitRegion(
                        uid=f"{profile.name}-bait-{uid}",
                        kind=kind,
                        path=path,
                        line_start=base + rel_start + 1,
                        line_end=base + rel_end + 1,
                        pattern=snippet.pattern,
                    )
                )
        out.files.append(
            GeneratedFile(path=path, source="\n".join(lines) + "\n", category=category, compiled=compiled)
        )
    if include_extended_kinds:
        _inject_cross_module(profile, out)
    return out


def _inject_cross_module(profile: OSProfile, out: GeneratedOS) -> None:
    """Post-loop cross-module injection (P2.6 corpora, e.g. FIRMLAB).

    Multi-file patterns are appended to already-generated files from a
    *separate* rng stream: the per-file loop above consumes ``rng``
    exactly as it always did, so profiles with zero cross quotas — every
    historical one — generate byte-identical trees.  Each pattern's
    pieces land in distinct files (``xrng.sample``), modeling flows
    between separately built firmware images."""
    from .patterns import XTNT_BAIT_PATTERNS, XTNT_BORDER_PATTERNS, XTNT_FLOW_PATTERNS

    if profile.cross_flows + profile.cross_baits + profile.cross_border == 0:
        return
    xrng = random.Random(profile.seed * 7919 + 17)
    targets = [f for f in out.files if f.compiled]
    if len(targets) < 2:
        return
    counter = 0

    def place(pool, index: int) -> None:
        nonlocal counter
        counter += 1
        uid = f"x{profile.seed % 97}{counter:04d}"
        pieces = pool[index % len(pool)](uid, xrng)
        if len(pieces) > len(targets):
            return
        for piece, target in zip(pieces, xrng.sample(targets, k=len(pieces))):
            _append_snippet(out, target, piece, profile, uid)

    # Round-robin over each pool: the quota, not an rng draw, decides
    # the pattern mix, so every scale hits every shape.
    for i in range(profile.cross_flows):
        place(XTNT_FLOW_PATTERNS, i)
    for i in range(profile.cross_baits):
        place(XTNT_BAIT_PATTERNS, i)
    for i in range(profile.cross_border):
        place(XTNT_BORDER_PATTERNS, i)


def _append_snippet(
    out: GeneratedOS, file: GeneratedFile, snippet: Snippet,
    profile: OSProfile, uid: str,
) -> None:
    """Append ``snippet`` to an already-assembled file, recording ground
    truth with the same base-index arithmetic as the per-file loop (the
    blank separator line occupies ``base``; snippet lines follow)."""
    base = file.source.count("\n") + 1
    file.source = file.source + "\n" + "\n".join(snippet.lines) + "\n"
    for kind, rel_start, rel_end, requirement in snippet.bugs:
        out.ground_truth.append(
            GroundTruthBug(
                uid=f"{profile.name}-{uid}",
                kind=kind,
                path=file.path,
                line_start=base + rel_start + 1,
                line_end=base + rel_end + 1,
                requires=requirement,
                category=file.category,
                pattern=snippet.pattern,
            )
        )
    for kind, rel_start, rel_end in snippet.baits:
        out.bait_regions.append(
            BaitRegion(
                uid=f"{profile.name}-bait-{uid}",
                kind=kind,
                path=file.path,
                line_start=base + rel_start + 1,
                line_end=base + rel_end + 1,
                pattern=snippet.pattern,
            )
        )


_STEMS = [
    "core", "main", "ctrl", "hw", "init", "io", "proto", "queue", "sched",
    "xfer", "link", "buf", "cfg", "mod", "unit", "port", "chan", "dev",
]


def _file_stem(rng: random.Random) -> str:
    return f"{rng.choice(_STEMS)}{rng.randint(0, 99)}"
