"""Synthetic OS corpora with exact ground truth (the Table 4 workloads)."""

from .spec import (
    BaitRegion,
    GeneratedFile,
    GeneratedOS,
    GroundTruthBug,
    OSProfile,
    Requirement,
)
from .generator import generate
from .oses import (
    ALL_PROFILES,
    FIRMLAB,
    LINUX,
    PROFILES_BY_NAME,
    RACELAB,
    RIOT,
    TAINTLAB,
    TENCENTOS,
    ZEPHYR,
)
from .metrics import (
    CONFIRM_PERCENT,
    MatchResult,
    is_confirmed,
    match_findings,
    reachable_truth,
)

__all__ = [
    "BaitRegion", "GeneratedFile", "GeneratedOS", "GroundTruthBug",
    "OSProfile", "Requirement", "generate",
    "ALL_PROFILES", "FIRMLAB", "LINUX", "PROFILES_BY_NAME", "RACELAB", "RIOT", "TAINTLAB", "TENCENTOS", "ZEPHYR",
    "CONFIRM_PERCENT", "MatchResult", "is_confirmed", "match_findings",
    "reachable_truth",
]
