"""Corpus specification: OS profiles, generated files, ground truth.

The evaluation corpora are *generated* mini-C OS trees (the paper's Linux/
Zephyr/RIOT/TencentOS-tiny stand-ins — see DESIGN.md §2 for why this
substitution preserves the evaluation's shape).  Every injected bug and
every injected false-bug bait region is recorded as ground truth, so the
harness can classify tool findings as real or false positives exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..typestate import BugKind


@dataclass(frozen=True)
class Requirement:
    """What a tool must be able to do to find an injected bug.  Used for
    result *analysis* only — never leaked to the tools."""

    interprocedural: bool = False
    aliasing: bool = False
    path_sensitive: bool = False


@dataclass
class GroundTruthBug:
    """One injected real bug.  A finding of ``kind`` inside
    [line_start, line_end] of ``path`` matches it."""

    uid: str
    kind: BugKind
    path: str
    line_start: int
    line_end: int
    requires: Requirement = field(default_factory=Requirement)
    category: str = "drivers"
    pattern: str = ""

    def covers(self, kind: BugKind, path: str, line: int) -> bool:
        return kind is self.kind and path == self.path and self.line_start <= line <= self.line_end


@dataclass
class BaitRegion:
    """An injected *infeasible* or otherwise safe region that naive tools
    flag; any finding inside it is a false positive by construction."""

    uid: str
    kind: Optional[BugKind]  # None = any kind counts as FP here
    path: str
    line_start: int
    line_end: int
    pattern: str = ""

    def covers(self, kind: BugKind, path: str, line: int) -> bool:
        if self.path != path or not (self.line_start <= line <= self.line_end):
            return False
        return self.kind is None or kind is self.kind


@dataclass
class GeneratedFile:
    path: str
    source: str
    category: str
    compiled: bool = True  # False = excluded from PATA's kernel config

    @property
    def line_count(self) -> int:
        return self.source.count("\n") + 1


@dataclass
class OSProfile:
    """Shape of one generated OS tree."""

    name: str
    version_label: str
    seed: int
    #: (directory, category, file share) — categories drive Fig. 11
    layout: List[Tuple[str, str, float]]
    total_files: int
    snippets_per_file: Tuple[int, int] = (4, 8)
    #: per-category real-bug injection rate (bugs per file, on average)
    bug_rate: Dict[str, float] = field(default_factory=dict)
    #: bait (false-bug) injection rate per file
    bait_rate: float = 0.5
    #: fraction of files not enabled by the compilation config (PATA and
    #: the compile-based tools do not see them; Cppcheck/Coccinelle do)
    excluded_fraction: float = 0.0
    #: share of NPD / UVA / ML / DL / AIU / DBZ among injected bugs
    kind_mix: Dict[str, float] = field(
        default_factory=lambda: {"NPD": 0.62, "UVA": 0.18, "ML": 0.08, "DL": 0.04, "AIU": 0.05, "DBZ": 0.03}
    )

    def scaled(self, factor: float) -> "OSProfile":
        clone = OSProfile(
            name=self.name,
            version_label=self.version_label,
            seed=self.seed,
            layout=list(self.layout),
            total_files=max(2, int(self.total_files * factor)),
            snippets_per_file=self.snippets_per_file,
            bug_rate=dict(self.bug_rate),
            bait_rate=self.bait_rate,
            excluded_fraction=self.excluded_fraction,
            kind_mix=dict(self.kind_mix),
        )
        return clone


@dataclass
class GeneratedOS:
    profile: OSProfile
    files: List[GeneratedFile] = field(default_factory=list)
    ground_truth: List[GroundTruthBug] = field(default_factory=list)
    bait_regions: List[BaitRegion] = field(default_factory=list)

    def compiled_files(self) -> List[GeneratedFile]:
        return [f for f in self.files if f.compiled]

    def all_sources(self) -> List[Tuple[str, str]]:
        return [(f.path, f.source) for f in self.files]

    def compiled_sources(self) -> List[Tuple[str, str]]:
        return [(f.path, f.source) for f in self.files if f.compiled]

    def total_lines(self) -> int:
        return sum(f.line_count for f in self.files)

    def compiled_lines(self) -> int:
        return sum(f.line_count for f in self.files if f.compiled)
