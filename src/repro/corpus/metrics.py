"""Ground-truth matching: classify tool findings as real or false.

A finding is *real* when a ground-truth bug of the same kind covers its
(file, line); multiple findings on one ground-truth bug count as one real
bug (the paper counts distinct bugs).  Everything else is a false
positive — findings inside bait regions are false by construction, and
so are findings in clean code.

"Confirmed" bugs (Table 5's third bug row) are modeled as a
deterministic ~36% subset of the real found bugs (206/574 in the paper),
selected by hashing the bug uid so the subset is stable across runs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..typestate import BugKind
from .spec import BaitRegion, GeneratedOS, GroundTruthBug

#: (kind, path, line) — the normalized shape of a finding
Finding = Tuple[BugKind, str, int]

CONFIRM_PERCENT = 36


@dataclass
class MatchResult:
    tool: str = ""
    os_name: str = ""
    found: int = 0
    real: int = 0
    confirmed: int = 0
    false_positives: int = 0
    found_by_kind: Dict[BugKind, int] = field(default_factory=dict)
    real_by_kind: Dict[BugKind, int] = field(default_factory=dict)
    confirmed_by_kind: Dict[BugKind, int] = field(default_factory=dict)
    matched_uids: Set[str] = field(default_factory=set)
    real_by_category: Dict[str, int] = field(default_factory=dict)
    real_by_requirement: Dict[str, int] = field(default_factory=dict)

    @property
    def false_positive_rate(self) -> float:
        return self.false_positives / self.found if self.found else 0.0

    def kind_triple(self, kinds: Sequence[BugKind]) -> str:
        return "/".join(str(self.found_by_kind.get(k, 0)) for k in kinds)


def is_confirmed(uid: str) -> bool:
    """Stable hash-based membership in the modeled confirmed subset."""
    digest = hashlib.sha1(uid.encode()).digest()
    return digest[0] % 100 < CONFIRM_PERCENT


def match_findings(
    findings: Iterable[Finding],
    corpus: GeneratedOS,
    tool: str = "",
    restrict_kinds: Optional[Sequence[BugKind]] = None,
) -> MatchResult:
    """Classify ``findings`` against the corpus ground truth.

    ``restrict_kinds`` drops findings of kinds outside the measured set
    (e.g. when only NPD/UVA/ML are benchmarked).
    """
    result = MatchResult(tool=tool, os_name=corpus.profile.name)
    truth = corpus.ground_truth
    matched: Dict[str, GroundTruthBug] = {}
    fp_keys: Set[Tuple[BugKind, str, int]] = set()

    for kind, path, line in findings:
        if restrict_kinds is not None and kind not in restrict_kinds:
            continue
        gt = _lookup(truth, kind, path, line)
        if gt is not None:
            matched[gt.uid] = gt
            continue
        fp_keys.add((kind, path, line))

    for uid, gt in matched.items():
        result.matched_uids.add(uid)
        result.real += 1
        result.real_by_kind[gt.kind] = result.real_by_kind.get(gt.kind, 0) + 1
        result.found_by_kind[gt.kind] = result.found_by_kind.get(gt.kind, 0) + 1
        result.real_by_category[gt.category] = result.real_by_category.get(gt.category, 0) + 1
        for flag in ("interprocedural", "aliasing", "path_sensitive"):
            if getattr(gt.requires, flag):
                result.real_by_requirement[flag] = result.real_by_requirement.get(flag, 0) + 1
        if is_confirmed(uid):
            result.confirmed += 1
            result.confirmed_by_kind[gt.kind] = result.confirmed_by_kind.get(gt.kind, 0) + 1

    for kind, path, line in fp_keys:
        result.false_positives += 1
        result.found_by_kind[kind] = result.found_by_kind.get(kind, 0) + 1

    result.found = result.real + result.false_positives
    return result


def _lookup(truth: List[GroundTruthBug], kind: BugKind, path: str, line: int) -> Optional[GroundTruthBug]:
    for gt in truth:
        if gt.covers(kind, path, line):
            return gt
    return None


def reachable_truth(
    corpus: GeneratedOS,
    kinds: Sequence[BugKind],
    compiled_only: bool = True,
) -> List[GroundTruthBug]:
    """Ground-truth bugs a compile-based tool could possibly find: right
    kinds, and (optionally) inside compiled files."""
    compiled_paths = {f.path for f in corpus.compiled_files()}
    out = []
    for gt in corpus.ground_truth:
        if gt.kind not in kinds:
            continue
        if compiled_only and gt.path not in compiled_paths:
            continue
        out.append(gt)
    return out
