"""The four OS profiles of the evaluation (Table 4).

The paper checks Linux 5.6 (14.2M LOC), Zephyr 2.1.0 (383K), RIOT 2020.04
(1.575M) and TencentOS-tiny (572K).  Our corpora reproduce the *relative*
shapes at roughly 1/400 scale: Linux is by far the largest and
drivers-dominated; the IoT OSes are small with heavy third-party trees.
Category shares are tuned so the bug distribution of Fig. 11 emerges:
~75% of Linux real bugs in drivers/, ~68% of IoT real bugs in
third-party modules.
"""

from __future__ import annotations

from typing import Dict, List

from .spec import OSProfile

LINUX = OSProfile(
    name="linux",
    version_label="5.6",
    seed=561,
    layout=[
        ("drivers", "drivers", 0.58),
        ("net", "network", 0.08),
        ("fs", "filesystem", 0.08),
        ("kernel", "core", 0.10),
        ("mm", "core", 0.06),
        ("sound", "drivers", 0.10),
    ],
    total_files=170,
    snippets_per_file=(4, 8),
    bug_rate={"drivers": 0.16, "network": 0.10, "filesystem": 0.10, "core": 0.035},
    bait_rate=0.55,
    excluded_fraction=0.14,
)

ZEPHYR = OSProfile(
    name="zephyr",
    version_label="2.1.0",
    seed=210,
    layout=[
        ("subsys/bluetooth", "subsystem", 0.22),
        ("subsys/net", "subsystem", 0.18),
        ("drivers", "drivers", 0.18),
        ("kernel", "core", 0.14),
        ("ext/hal", "third_party", 0.28),
    ],
    total_files=26,
    snippets_per_file=(3, 7),
    bug_rate={"subsystem": 0.10, "drivers": 0.05, "core": 0.025, "third_party": 0.30},
    bait_rate=0.5,
    excluded_fraction=0.10,
)

RIOT = OSProfile(
    name="riot",
    version_label="2020.04",
    seed=2004,
    layout=[
        ("sys/net", "subsystem", 0.16),
        ("cpu/native", "core", 0.14),
        ("drivers", "drivers", 0.16),
        ("core", "core", 0.10),
        ("pkg", "third_party", 0.44),
    ],
    total_files=48,
    snippets_per_file=(3, 7),
    bug_rate={"subsystem": 0.09, "drivers": 0.05, "core": 0.03, "third_party": 0.32},
    bait_rate=0.5,
    excluded_fraction=0.12,
)

TENCENTOS = OSProfile(
    name="tencentos",
    version_label="23313e",
    seed=23313,
    layout=[
        ("kernel/core", "core", 0.22),
        ("osal", "subsystem", 0.18),
        ("net", "subsystem", 0.12),
        ("components", "third_party", 0.40),
        ("drivers", "drivers", 0.08),
    ],
    total_files=22,
    snippets_per_file=(3, 6),
    bug_rate={"core": 0.04, "subsystem": 0.10, "drivers": 0.05, "third_party": 0.34},
    bait_rate=0.5,
    excluded_fraction=0.10,
    kind_mix={"NPD": 0.36, "UVA": 0.30, "ML": 0.18, "DL": 0.06, "AIU": 0.06, "DBZ": 0.04},
)

#: Taint-focused corpus for exercising the taint checker end to end:
#: every injected bug is a user-input → sensitive-sink flow, with the
#: sanitized siblings as bait.  Deliberately *not* part of
#: ``ALL_PROFILES``/``PROFILES_BY_NAME`` — the evaluation tables iterate
#: those, and their numbers must not shift under the seventh checker.
TAINTLAB = OSProfile(
    name="taintlab",
    version_label="demo",
    seed=4242,
    layout=[
        ("drivers/char", "drivers", 0.45),
        ("drivers/net", "drivers", 0.25),
        ("ipc", "subsystem", 0.30),
    ],
    total_files=14,
    snippets_per_file=(3, 6),
    bug_rate={"drivers": 0.30, "subsystem": 0.20},
    bait_rate=0.4,
    excluded_fraction=0.0,
    kind_mix={"TNT": 1.0},
)

#: Race-focused corpus for the lockset checker and its P2.5 cross-entry
#: matching: every snippet is drawn from the RACE pool — three injected
#: disjoint-lockset races plus two bait shapes (properly locked, and
#: flag-serialized where only stage-2 pair validation stays silent).
#: ``bug_rate=1.0`` keeps generic fillers out: ``filler_pool`` races on
#: the OS-wide ``g_pool_head`` by design and would pollute the ground
#: truth.  Like TAINTLAB, deliberately *not* part of ``ALL_PROFILES``.
RACELAB = OSProfile(
    name="racelab",
    version_label="demo",
    seed=9191,
    layout=[
        ("kernel/irq", "core", 0.40),
        ("drivers/net", "drivers", 0.35),
        ("block", "subsystem", 0.25),
    ],
    total_files=8,
    snippets_per_file=(2, 4),
    bug_rate={"core": 1.0, "drivers": 1.0, "subsystem": 1.0},
    bait_rate=0.0,
    excluded_fraction=0.0,
    kind_mix={"RACE": 1.0},
)

#: Firmware multi-image corpus for the P2.6 cross-module taint pass:
#: many small separately built images whose only coupling is name-unified
#: globals — exactly the channel the interface summaries export/import
#: over.  Intra-module bug/bait rates are zero; everything interesting is
#: injected by the generator's cross-module post-pass (22 real flows over
#: the four multi-file shapes, 8 bait-only shapes the pair discharge or
#: flow tracking must stay silent on, and 3 border-source probes only
#: reportable under ``--taint-borders``).  Like TAINTLAB/RACELAB,
#: deliberately *not* part of ``ALL_PROFILES``.
FIRMLAB = OSProfile(
    name="firmlab",
    version_label="multi-image",
    seed=7117,
    layout=[
        ("images/boot", "firmware", 0.20),
        ("images/app", "firmware", 0.30),
        ("images/net", "firmware", 0.30),
        ("images/sensor", "firmware", 0.20),
    ],
    total_files=18,
    snippets_per_file=(1, 2),
    bug_rate={"firmware": 0.0},
    bait_rate=0.0,
    excluded_fraction=0.0,
    kind_mix={"TNT": 1.0},
    cross_flows=22,
    cross_baits=8,
    cross_border=3,
)

ALL_PROFILES: List[OSProfile] = [LINUX, ZEPHYR, RIOT, TENCENTOS]
PROFILES_BY_NAME: Dict[str, OSProfile] = {p.name: p for p in ALL_PROFILES}
