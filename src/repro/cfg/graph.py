"""CFG utilities over IR functions: predecessors, reachability, traversal."""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterator, List, Set

from ..ir import BasicBlock, Function


def successors(block: BasicBlock) -> List[BasicBlock]:
    """Successor blocks of ``block`` (empty for returns)."""
    return list(block.successors())


def predecessors(func: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    """Predecessor lists for every block of ``func``."""
    preds: Dict[BasicBlock, List[BasicBlock]] = {b: [] for b in func.blocks}
    for block in func.blocks:
        for succ in block.successors():
            preds[succ].append(block)
    return preds


def reachable_blocks(func: Function) -> Set[BasicBlock]:
    """Blocks reachable from the entry."""
    if func.is_declaration:
        return set()
    seen: Set[BasicBlock] = set()
    work = deque([func.entry])
    while work:
        block = work.popleft()
        if block in seen:
            continue
        seen.add(block)
        work.extend(block.successors())
    return seen


def reverse_postorder(func: Function) -> List[BasicBlock]:
    """Blocks in reverse post-order (a topological order ignoring back
    edges) — the canonical iteration order for forward dataflow."""
    seen: Set[BasicBlock] = set()
    order: List[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        stack = [(block, iter(block.successors()))]
        seen.add(block)
        while stack:
            current, succ_iter = stack[-1]
            advanced = False
            for succ in succ_iter:
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, iter(succ.successors())))
                    advanced = True
                    break
            if not advanced:
                order.append(current)
                stack.pop()

    if not func.is_declaration:
        visit(func.entry)
    order.reverse()
    return order


def back_edges(func: Function) -> Set[tuple]:
    """(source, target) pairs whose target is an ancestor in the DFS tree —
    i.e. loop back edges in a reducible CFG."""
    color: Dict[BasicBlock, int] = {}
    edges: Set[tuple] = set()

    def dfs(root: BasicBlock) -> None:
        stack = [(root, iter(root.successors()))]
        color[root] = 1
        while stack:
            block, succ_iter = stack[-1]
            advanced = False
            for succ in succ_iter:
                if color.get(succ, 0) == 1:
                    edges.add((block, succ))
                elif color.get(succ, 0) == 0:
                    color[succ] = 1
                    stack.append((succ, iter(succ.successors())))
                    advanced = True
                    break
            if not advanced:
                color[block] = 2
                stack.pop()

    if not func.is_declaration:
        dfs(func.entry)
    return edges


def block_instructions(func: Function) -> Iterator:
    """Iterate instructions of all blocks in block order."""
    for block in func.blocks:
        yield from block.instructions
