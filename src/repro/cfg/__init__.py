"""Control-flow utilities: CFG traversal, dominators, call graph, paths."""

from .graph import (
    back_edges,
    block_instructions,
    predecessors,
    reachable_blocks,
    reverse_postorder,
    successors,
)
from .dominators import dominates, dominators, immediate_dominators
from .callgraph import CallGraph, mark_interface_functions
from .paths import BlockPath, PathStep, count_paths, enumerate_paths

__all__ = [
    "back_edges", "block_instructions", "predecessors", "reachable_blocks",
    "reverse_postorder", "successors",
    "dominates", "dominators", "immediate_dominators",
    "CallGraph", "mark_interface_functions",
    "BlockPath", "PathStep", "count_paths", "enumerate_paths",
]
