"""Dominator computation (Cooper-Harvey-Kennedy iterative algorithm).

Used by the flow-sensitive baselines: a null check *dominating* a use is
how path-insensitive tools decide a pointer was validated.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..ir import BasicBlock, Function
from .graph import predecessors, reverse_postorder


def immediate_dominators(func: Function) -> Dict[BasicBlock, Optional[BasicBlock]]:
    """idom map; the entry maps to None.  Unreachable blocks are absent."""
    order = reverse_postorder(func)
    if not order:
        return {}
    index = {block: i for i, block in enumerate(order)}
    preds = predecessors(func)
    entry = order[0]
    idom: Dict[BasicBlock, Optional[BasicBlock]] = {entry: entry}

    def intersect(b1: BasicBlock, b2: BasicBlock) -> BasicBlock:
        while b1 is not b2:
            while index[b1] > index[b2]:
                b1 = idom[b1]
            while index[b2] > index[b1]:
                b2 = idom[b2]
        return b1

    changed = True
    while changed:
        changed = False
        for block in order[1:]:
            candidates = [p for p in preds[block] if p in idom]
            if not candidates:
                continue
            new_idom = candidates[0]
            for other in candidates[1:]:
                new_idom = intersect(other, new_idom)
            if idom.get(block) is not new_idom:
                idom[block] = new_idom
                changed = True
    result: Dict[BasicBlock, Optional[BasicBlock]] = {}
    for block, dom in idom.items():
        result[block] = None if block is entry else dom
    return result


def dominators(func: Function) -> Dict[BasicBlock, Set[BasicBlock]]:
    """Full dominator sets derived from the idom tree (block includes itself)."""
    idom = immediate_dominators(func)
    result: Dict[BasicBlock, Set[BasicBlock]] = {}
    for block in idom:
        doms = {block}
        current = idom[block]
        while current is not None:
            doms.add(current)
            current = idom[current]
        result[block] = doms
    return result


def dominates(doms: Dict[BasicBlock, Set[BasicBlock]], a: BasicBlock, b: BasicBlock) -> bool:
    """True when ``a`` dominates ``b`` (given precomputed sets)."""
    return a in doms.get(b, set())
