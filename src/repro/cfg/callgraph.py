"""Call graph construction and analysis-entry discovery.

PATA starts path exploration at *functions without explicit callers*
(Fig. 6, AnalyzeCode): module-interface functions registered through
function-pointer fields (Fig. 1) and any function never called directly.
This module builds the name-resolved direct call graph over a
:class:`~repro.ir.Program` and computes those entry points.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, List, Set

from ..ir import Call, Function, Program


class CallGraph:
    """Direct (name-resolved) call graph.  Indirect calls are recorded but
    deliberately unresolved, mirroring PATA's limitation (§7)."""

    def __init__(self, program: Program):
        self.program = program
        self.callees: Dict[str, Set[str]] = defaultdict(set)
        self.callers: Dict[str, Set[str]] = defaultdict(set)
        self.indirect_call_sites: int = 0
        self._build()

    def _build(self) -> None:
        for func in self.program.functions():
            for inst in func.instructions():
                if isinstance(inst, Call):
                    self.callees[func.name].add(inst.callee)
                    self.callers[inst.callee].add(func.name)
                elif type(inst).__name__ == "CallIndirect":
                    self.indirect_call_sites += 1

    def callees_of(self, name: str) -> Set[str]:
        return self.callees.get(name, set())

    def callers_of(self, name: str) -> Set[str]:
        return self.callers.get(name, set())

    def entry_functions(self) -> List[Function]:
        """Functions PATA analyzes top-down: interface functions plus any
        defined function with no direct caller in the program."""
        entries: List[Function] = []
        for func in self.program.functions():
            if func.is_interface or not self.callers.get(func.name):
                entries.append(func)
        return entries

    def transitive_callees(self, name: str, limit: int = 10000) -> Set[str]:
        seen: Set[str] = set()
        work = [name]
        while work and len(seen) < limit:
            current = work.pop()
            for callee in self.callees.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    work.append(callee)
        return seen

    def recursive_functions(self) -> Set[str]:
        """Functions that participate in a call cycle (incl. self-recursion).

        Tarjan SCC over the direct call graph; any function inside a
        multi-node SCC, or with a self edge, is recursive.
        """
        graph = self.callees
        index_counter = [0]
        stack: List[str] = []
        lowlink: Dict[str, int] = {}
        index: Dict[str, int] = {}
        on_stack: Set[str] = set()
        result: Set[str] = set()

        def strongconnect(node: str) -> None:
            work = [(node, iter(sorted(graph.get(node, ()))))]
            index[node] = lowlink[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            while work:
                current, it = work[-1]
                advanced = False
                for succ in it:
                    if succ not in index:
                        index[succ] = lowlink[succ] = index_counter[0]
                        index_counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(sorted(graph.get(succ, ())))))
                        advanced = True
                        break
                    elif succ in on_stack:
                        lowlink[current] = min(lowlink[current], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[current])
                if lowlink[current] == index[current]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == current:
                            break
                    if len(component) > 1:
                        result.update(component)
                    elif component and component[0] in graph.get(component[0], ()):
                        result.add(component[0])

        for node in list(graph):
            if node not in index:
                strongconnect(node)
        return result


def mark_interface_functions(program: Program) -> int:
    """Resolve registrations across modules: ``.probe = fn`` in one file may
    register a function defined in another.  Returns how many functions are
    marked as interfaces afterwards."""
    count = 0
    for reg in program.registrations():
        func = program.lookup(reg.function)
        if func is not None:
            func.is_interface = True
    for func in program.functions():
        if func.is_interface:
            count += 1
    return count
