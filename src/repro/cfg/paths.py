"""Intra-procedural control-flow path enumeration.

PATA's main engine walks paths inter-procedurally (``repro.core.analyzer``);
this module provides the *intra*-procedural enumeration used by the
path-sensitive baselines (CSA-like) and by tests, with the same loop policy
as the paper: each loop body is unrolled at most once per path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from ..ir import BasicBlock, Branch, Function, Jump, Ret, Unreachable


@dataclass
class PathStep:
    """One block on a path plus how its terminator was resolved.

    ``branch_taken`` is None for jumps/returns, True/False for branches.
    """

    block: BasicBlock
    branch_taken: Optional[bool] = None


@dataclass
class BlockPath:
    steps: List[PathStep] = field(default_factory=list)

    def blocks(self) -> List[BasicBlock]:
        return [s.block for s in self.steps]

    def __len__(self) -> int:
        return len(self.steps)


def enumerate_paths(
    func: Function,
    max_paths: int = 4096,
    max_block_visits: int = 2,
) -> Iterator[BlockPath]:
    """Yield complete (entry→return) block paths of ``func``.

    ``max_block_visits`` bounds per-path revisits of one block — 2 allows a
    loop header to be seen again after one body iteration, which is the
    paper's "unroll each loop once".  Paths that exceed the budget are cut
    (dropped), matching PATA's soundness-loss-by-unrolling behaviour.
    """
    if func.is_declaration:
        return
    emitted = 0
    stack: List[Tuple[List[PathStep], dict]] = [([PathStep(func.entry)], {func.entry.uid: 1})]
    while stack and emitted < max_paths:
        steps, visits = stack.pop()
        block = steps[-1].block
        term = block.terminator
        if term is None or isinstance(term, (Ret, Unreachable)):
            yield BlockPath(steps)
            emitted += 1
            continue
        if isinstance(term, Jump):
            nexts = [(term.target, None)]
        elif isinstance(term, Branch):
            nexts = [(term.else_block, False), (term.then_block, True)]
        else:  # pragma: no cover - verifier rejects unknown terminators
            continue
        for target, taken in nexts:
            if visits.get(target.uid, 0) >= max_block_visits:
                continue
            new_steps = list(steps)
            new_steps[-1] = PathStep(block, taken)
            new_steps.append(PathStep(target))
            new_visits = dict(visits)
            new_visits[target.uid] = new_visits.get(target.uid, 0) + 1
            stack.append((new_steps, new_visits))


def count_paths(func: Function, max_paths: int = 4096) -> int:
    """Number of complete paths (bounded by ``max_paths``)."""
    return sum(1 for _ in enumerate_paths(func, max_paths))
