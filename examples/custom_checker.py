#!/usr/bin/env python3
"""Writing a new typestate checker: use-after-free in ~60 lines.

The paper claims each checker takes "just 100-200 lines of code" (§5.1,
§5.5) because PATA's framework handles alias tracking, path exploration
and validation.  This example defines FSM_UAF — S0 → free → SF → use →
SUAF — wires it into the engine, and runs it on a demo driver with a
use-after-free reachable only through an alias.

Run:  python examples/custom_checker.py
"""

from repro import PATA, AnalysisConfig
from repro.core import BugFilter, InformationCollector, PathExplorer
from repro.core.report import BugReport
from repro.lang import compile_program
from repro.typestate import (
    BugKind,
    Checker,
    DerefEvent,
    FreeEvent,
    PossibleBug,
    TrackerContext,
    make_fsm,
)

UAF_FSM = make_fsm(
    "FSM_UAF",
    initial="S0",
    error="SUAF",
    transitions={
        ("S0", "free"): "SF",
        ("SF", "use"): "SUAF",
        ("SF", "realloc"): "S0",
        ("SUAF", "realloc"): "S0",
    },
)


class UseAfterFreeChecker(Checker):
    """States per alias set: S0 (live), SF (freed), SUAF (bug)."""

    name = "uaf"
    kind = BugKind.NPD  # reuse an existing category for report plumbing
    fsm = UAF_FSM

    def handle(self, event, ctx: TrackerContext) -> None:
        if isinstance(event, FreeEvent):
            ctx.set(self.name, event.ptr, ("SF", event.inst))
        elif isinstance(event, DerefEvent):
            state = ctx.get(self.name, event.ptr)
            if state is not None and state[0] == "SF":
                ctx.report(
                    PossibleBug(
                        kind=self.kind,
                        checker=self.name,
                        subject=event.ptr.display_name(),
                        source=state[1],
                        sink=event.inst,
                        message=(
                            f"'{event.ptr.display_name()}' used after being freed "
                            f"at {state[1].loc}"
                        ),
                        alias_set=ctx.alias_names(event.ptr),
                    )
                )
                ctx.set(self.name, event.ptr, ("S0", None))


DEMO_SOURCE = r"""
struct req { int opcode; int len; };

static void finish(struct req *r) {
    kfree(r);
}

int submit(struct req *r, int retry) {
    struct req *saved = r;
    finish(r);
    if (retry) {
        int op = saved->opcode;   /* use-after-free via the alias */
        return op;
    }
    return 0;
}
struct req_ops { int (*submit)(struct req *r, int retry); };
static struct req_ops ops = { .submit = submit };
"""


def main() -> None:
    program = compile_program([("drivers/req.c", DEMO_SOURCE)])
    collector = InformationCollector(program)
    config = AnalysisConfig()
    explorer = PathExplorer(program, config, [UseAfterFreeChecker()])
    for entry in collector.entry_functions():
        explorer.explore(entry)
    filtered = BugFilter().run(explorer.possible_bugs)
    print(f"use-after-free checker: {len(filtered.reports)} bug(s)\n")
    for report in filtered.reports:
        print(report.render())
        print()
    assert any(r.checker == "uaf" for r in filtered.reports)
    print("note: the bug is found through the alias set "
          f"{filtered.reports[0].alias_set} — 'saved' was never freed "
          "directly, 'finish' freed its parameter.")


if __name__ == "__main__":
    main()
