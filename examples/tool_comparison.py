#!/usr/bin/env python3
"""Head-to-head: PATA vs the seven baseline regimes on one corpus
(a single-OS slice of Table 8).

Run:  python examples/tool_comparison.py [os] [scale]
      os ∈ {linux, zephyr, riot, tencentos}, default zephyr
"""

import sys

from repro import PATA
from repro.baselines import all_baselines
from repro.corpus import PROFILES_BY_NAME, generate, match_findings
from repro.evaluation import PRIMARY_KINDS, render_table
from repro.lang import compile_program


def main() -> None:
    os_name = sys.argv[1] if len(sys.argv) > 1 else "zephyr"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    profile = PROFILES_BY_NAME[os_name].scaled(scale)
    corpus = generate(profile)
    compiled = compile_program(corpus.compiled_sources())
    everything = compile_program(corpus.all_sources())

    rows = []
    for tool in all_baselines():
        source_based = tool.name in ("cppcheck-like", "coccinelle-like")
        program = everything if source_based else compiled
        result = tool.analyze(program)
        if result.status != "ok":
            rows.append([tool.name, result.status.upper(), "-", "-", f"{result.time_seconds:.1f}"])
            continue
        findings = [(f.kind, f.file, f.line) for f in result.findings]
        match = match_findings(findings, corpus, tool.name, restrict_kinds=PRIMARY_KINDS)
        rows.append([
            tool.name, match.found, match.real,
            f"{match.false_positive_rate:.0%}", f"{result.time_seconds:.1f}",
        ])

    pata_result = PATA().analyze(compiled)
    findings = [(r.kind, r.sink_file, r.sink_line) for r in pata_result.reports]
    match = match_findings(findings, corpus, "pata", restrict_kinds=PRIMARY_KINDS)
    rows.append([
        "PATA", match.found, match.real,
        f"{match.false_positive_rate:.0%}", f"{pata_result.stats.time_seconds:.1f}",
    ])

    print(render_table(
        ["Tool", "Found", "Real", "FP rate", "Time (s)"],
        rows,
        title=f"Tool comparison on the {os_name} corpus "
              f"({corpus.total_lines():,} LOC, scale {scale})",
    ))


if __name__ == "__main__":
    main()
