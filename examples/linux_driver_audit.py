#!/usr/bin/env python3
"""Audit a generated Linux-profile corpus with all six checkers and score
the results against the corpus' exact ground truth.

This is the §5.1 + §5.5 experience in miniature: generate an OS tree,
compile it with the mini-C frontend, run PATA with the NPD/UVA/ML
checkers plus the double-lock / array-underflow / division-by-zero
checkers, then report precision, recall, and the Fig. 11 distribution.

Run:  python examples/linux_driver_audit.py [scale]
"""

import sys
import time

from repro import PATA
from repro.corpus import LINUX, generate, match_findings, reachable_truth
from repro.lang import compile_program
from repro.typestate import BugKind


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    profile = LINUX.scaled(scale)

    print(f"Generating {profile.name}-{profile.version_label} corpus (scale {scale}) ...")
    corpus = generate(profile)
    print(f"  {len(corpus.files)} files, {corpus.total_lines():,} LOC, "
          f"{len(corpus.ground_truth)} injected bugs, "
          f"{len(corpus.bait_regions)} bait regions")

    print("Compiling config-enabled files ...")
    program = compile_program(corpus.compiled_sources())

    print("Running PATA with all six checkers ...")
    started = time.monotonic()
    result = PATA.with_all_checkers().analyze(program)
    elapsed = time.monotonic() - started

    findings = [(r.kind, r.sink_file, r.sink_line) for r in result.reports]
    match = match_findings(findings, corpus)
    truth = reachable_truth(corpus, list(BugKind))

    print(f"\n  analysis time        {elapsed:.1f}s "
          f"({result.stats.explored_paths:,} paths, "
          f"{result.stats.executed_steps:,} instruction steps)")
    print(f"  typestates           {result.stats.typestates_aware:,} alias-aware "
          f"vs {result.stats.typestates_unaware:,} per-variable")
    print(f"  SMT constraints      {result.stats.smt_constraints_aware:,} alias-aware "
          f"vs {result.stats.smt_constraints_unaware:,} per-variable")
    print(f"  dropped as repeated  {result.stats.dropped_repeated_bugs}")
    print(f"  dropped as infeasible {result.stats.dropped_false_bugs}")
    print(f"\n  found bugs           {match.found}")
    print(f"  real bugs            {match.real} / {len(truth)} reachable "
          f"(recall {match.real / max(1, len(truth)):.0%})")
    print(f"  false positives      {match.false_positives} "
          f"(FP rate {match.false_positive_rate:.0%})")

    print("\n  by kind:")
    for kind in BugKind:
        found = match.found_by_kind.get(kind, 0)
        real = match.real_by_kind.get(kind, 0)
        if found:
            print(f"    {kind.short:4s} found {found:3d}  real {real:3d}")

    print("\n  real bugs by OS part (cf. Fig. 11):")
    total_real = sum(match.real_by_category.values()) or 1
    for category, count in sorted(match.real_by_category.items(), key=lambda kv: -kv[1]):
        print(f"    {category:12s} {count:3d}  ({count / total_real:.0%})")

    print("\n  sample reports:")
    for report in result.reports[:3]:
        print()
        for line in report.render().splitlines():
            print(f"    {line}")

    print("\nDynamically confirming the real reports in the interpreter ...")
    from repro.interp import DynamicConfirmer

    real_reports = [
        r for r in result.reports
        if any(g.covers(r.kind, r.sink_file, r.sink_line) for g in corpus.ground_truth)
    ]
    confirmer = DynamicConfirmer(program, max_runs=60)
    confirmed = [c for c in confirmer.confirm_all(real_reports) if c.confirmed]
    print(f"  {len(confirmed)}/{len(real_reports)} real reports reproduced at runtime")
    if confirmed:
        sample = confirmed[0]
        print(f"  e.g. {sample.report.kind.value} at {sample.report.location} "
              f"with {sample.witness}")


if __name__ == "__main__":
    main()
