#!/usr/bin/env python3
"""Quickstart: run PATA on a small driver and print its bug reports.

The snippet below contains three classic OS bugs:

* a null-pointer dereference reachable only through an alias established
  by a struct-field store (the Fig. 1 pattern of the paper);
* an uninitialized heap read (kmalloc without memset);
* a memory leak on an error path.

Run:  python examples/quickstart.py
"""

from repro import PATA

DRIVER_SOURCE = r"""
struct platform_device { int irq; int id; };
struct mxc_ctx { struct platform_device *plat_dev; int state; };
struct mxc_stats { int rx; int tx; };
static struct mxc_ctx g_ctx;

static int mxc_probe(struct platform_device *pdev) {
    struct mxc_ctx *dev = &g_ctx;
    dev->plat_dev = pdev;
    if (!dev->plat_dev) {
        /* BUG 1: pdev aliases dev->plat_dev, so it is NULL here. */
        int lost_irq = pdev->irq;
        return -19;
    }
    dev->state = 1;
    return 0;
}

static int mxc_read_stats(void) {
    struct mxc_stats *st = kmalloc(sizeof(struct mxc_stats));
    if (!st)
        return -12;
    /* BUG 2: st->rx was never written. */
    int total = st->rx;
    kfree(st);
    return total;
}

static int mxc_send(int len, int urgent) {
    char *frame = kmalloc(len);
    if (!frame)
        return -12;
    if (urgent)
        /* BUG 3: frame leaks on this early return. */
        return -16;
    kfree(frame);
    return 0;
}

struct platform_driver {
    int (*probe)(struct platform_device *p);
    int (*stats)(void);
    int (*send)(int len, int urgent);
};
static struct platform_driver mxc_driver = {
    .probe = mxc_probe,
    .stats = mxc_read_stats,
    .send = mxc_send,
};
"""


def main() -> None:
    result = PATA().analyze_sources([("drivers/mxc.c", DRIVER_SOURCE)])
    print(f"PATA found {len(result.reports)} bugs "
          f"({result.stats.explored_paths} paths explored, "
          f"{result.stats.dropped_false_bugs} infeasible reports dropped)\n")
    for report in result.reports:
        print(report.render())
        print()


if __name__ == "__main__":
    main()
