#!/usr/bin/env python3
"""The paper's motivating example (§2.1, Fig. 3): the Zephyr Bluetooth
mesh null-pointer dereference that hid for three years.

``friend_set`` checks ``cfg = model->user_data`` against NULL and jumps
to error handling — which calls ``send_friend_status(model)``.  The
callee re-loads the *same field* into its own ``cfg`` and dereferences
it.  Finding this requires:

1. path-based aliasing — on the error path, both ``cfg`` variables and
   ``model->user_data`` are one alias set;
2. inter-procedural typestate tracking — the NULL fact crosses the call;
3. an entry point with no caller — ``friend_set`` is registered through
   a function-pointer struct, so points-to analysis sees nothing.

The script runs full PATA and the PATA-NA ablation side by side, and
prints the alias set from the report — compare with Fig. 7 of the paper.

Run:  python examples/zephyr_bluetooth_npd.py
"""

from repro import PATA, AnalysisConfig

ZEPHYR_SOURCE = r"""
struct bt_mesh_cfg_srv { int frnd; int relay; int beacon; };
struct bt_mesh_model { struct bt_mesh_cfg_srv *user_data; int id; };

static void send_friend_status(struct bt_mesh_model *model) {
    struct bt_mesh_cfg_srv *cfg = model->user_data;
    int frnd_state = cfg->frnd;            /* unsafe dereference */
    emit_status(frnd_state);
}

static void friend_set(struct bt_mesh_model *model) {
    struct bt_mesh_cfg_srv *cfg = model->user_data;
    if (!cfg) {
        log_warn();
        goto send_status;                    /* error handling ... */
    }
    cfg->relay = 1;
send_status:
    send_friend_status(model);               /* ... still dereferences */
}

struct bt_mesh_model_op { void (*set)(struct bt_mesh_model *model); };
static struct bt_mesh_model_op friend_op = { .set = friend_set };
"""


def main() -> None:
    sources = [("subsys/bluetooth/cfg_srv.c", ZEPHYR_SOURCE)]

    print("=== PATA (path-sensitive + alias-aware) ===")
    result = PATA().analyze_sources(sources)
    for report in result.reports:
        print(report.render())
    assert result.reports, "PATA must find the Fig. 3 bug"

    print("\n=== PATA-NA (no alias relationships, Table 6 ablation) ===")
    na_result = PATA(config=AnalysisConfig().for_pata_na()).analyze_sources(sources)
    if na_result.reports:
        for report in na_result.reports:
            print(report.render())
    else:
        print("no bugs found — the NULL fact cannot cross the field alias, "
              "exactly the paper's point")

    print("\nAlias set carried by PATA's report (cf. Fig. 7):")
    print(" ", ", ".join(result.reports[0].alias_set))


if __name__ == "__main__":
    main()
