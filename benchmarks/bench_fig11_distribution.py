"""Figure 11 — distribution of the found bugs by OS part.

Paper: drivers hold 75% of the Linux real bugs (network+filesystem 16%,
others 9%); third-party modules hold 68% of the IoT real bugs
(subsystems 25%, others 7%).
"""

from conftest import save_result

from repro.evaluation import fig11_distribution


def test_fig11_distribution(benchmark, harness, results_dir):
    data, text = benchmark.pedantic(lambda: fig11_distribution(harness), rounds=1, iterations=1)
    print("\n" + text)
    save_result(results_dir, "fig11", text)

    linux = data["linux"]
    assert max(linux, key=linux.get) == "drivers"
    assert linux["drivers"] > 0.55  # paper: 75%

    iot = data["iot"]
    assert max(iot, key=iot.get) == "third_party"
    assert iot["third_party"] > 0.45  # paper: 68%
