"""Component micro-benchmarks + ablations of DESIGN.md's design choices.

Not a paper table: these measure the throughput of the pieces the paper
argues about — alias-graph updates (trail vs the naive copy the paper
describes), the SMT-lite solver, path exploration — and the effect of
the two engine knobs (callee-exit merging, path validation).
"""

import random

import pytest

from repro import PATA, AnalysisConfig
from repro.alias import AliasGraph, Trail
from repro.ir import INT, PointerType, Var
from repro.lang import compile_source
from repro.smt import App, Atom, Num, Sym, solve

P = PointerType(INT)
_VARS = [Var(f"v{i}", P, source_name=f"v{i}") for i in range(24)]


def _random_ops(n, seed=7):
    rng = random.Random(seed)
    ops = []
    for _ in range(n):
        kind = rng.choice(["move", "store", "load", "gep"])
        a, b = rng.sample(_VARS, 2)
        ops.append((kind, a, b, rng.choice(["f", "g", "next"])))
    return ops


def test_alias_graph_update_throughput(benchmark):
    ops = _random_ops(2000)

    def run():
        trail = Trail()
        graph = AliasGraph(trail)
        for kind, a, b, fieldname in ops:
            if kind == "move":
                graph.handle_move(a, b)
            elif kind == "store":
                graph.handle_store(a, b)
            elif kind == "load":
                graph.handle_load(a, b)
            else:
                graph.handle_gep(a, b, fieldname)
        return graph

    benchmark(run)


def test_alias_graph_trail_undo_throughput(benchmark):
    """The paper's Fig. 7 copies the graph at every branch; the trail
    makes fork+backtrack O(changes).  This measures a fork-heavy load:
    1000 branch points of 10 operations each."""
    ops = _random_ops(10)

    def run():
        trail = Trail()
        graph = AliasGraph(trail)
        for _ in range(1000):
            mark = trail.mark()
            for kind, a, b, fieldname in ops:
                if kind == "move":
                    graph.handle_move(a, b)
                elif kind == "store":
                    graph.handle_store(a, b)
                elif kind == "load":
                    graph.handle_load(a, b)
                else:
                    graph.handle_gep(a, b, fieldname)
            trail.undo_to(mark)

    benchmark(run)


def test_solver_throughput_on_path_shaped_systems(benchmark):
    """Conjunctions shaped like translated paths: equality chains +
    branch facts + a few disequalities."""
    systems = []
    rng = random.Random(3)
    for s in range(50):
        atoms = []
        for i in range(1, 10):
            atoms.append(Atom("eq", Sym(s * 100 + i), App("add", (Sym(s * 100 + i - 1), Num(1)))))
        atoms.append(Atom("eq", Sym(s * 100), Num(rng.randint(-5, 5))))
        atoms.append(Atom("lt", Sym(s * 100 + 3), Num(100)))
        atoms.append(Atom("ne", Sym(s * 100 + 5), Num(-99)))
        systems.append(atoms)

    def run():
        return [solve(atoms).result for atoms in systems]

    results = benchmark(run)
    assert all(r.value in ("sat", "unsat") for r in results)


# The callee has four internal branches (16 paths) but a single
# externally visible outcome, so exit merging collapses every call site
# to one continuation; six such calls would otherwise chain into 16^6
# continuations.
_EXPLOSION_SOURCE = (
    "static int leaf(int a) {\n"
    "    int r = 0;\n"
    "    if (a > 1) r = r + 1;\n"
    "    if (a > 2) r = r + 1;\n"
    "    if (a > 3) r = r + 1;\n"
    "    if (a > 4) r = r + 1;\n"
    "    return 7;\n"
    "}\n"
    "int top(int a) {\n"
    + "\n".join(f"    int r{i} = leaf(a + {i});" for i in range(6))
    + "\n    return a;\n}"
)


def test_ablation_callee_exit_merging(benchmark):
    """DESIGN.md §6: return merging ('combines the information of its
    code paths', §4 P2) — with the digest merge on vs off."""
    compile_source(_EXPLOSION_SOURCE)  # fail fast on syntax issues

    def run(merge):
        config = AnalysisConfig(
            merge_callee_exits=merge,
            max_paths_per_entry=3000,
            max_steps_per_entry=2_000_000,
        )
        return PATA(config=config).analyze_sources([("x.c", _EXPLOSION_SOURCE)])

    merged = benchmark.pedantic(lambda: run(True), rounds=1, iterations=1)
    unmerged = run(False)
    assert merged.stats.explored_paths <= 16
    assert (
        unmerged.stats.explored_paths > 50 * merged.stats.explored_paths
        or unmerged.stats.budget_exhausted_entries == 1
    )


def test_ablation_validation_cost_and_value(benchmark, harness):
    """Stage 2 costs time and removes false bugs (Table 5's 'dropped
    false bugs' row): compare found counts with validation on and off
    on a program built from every dischargeable bait pattern plus a few
    real bugs."""
    import random as _random

    from repro.corpus.patterns import BAIT_PATTERNS, BUG_PATTERNS, COMMON_DECLS
    from repro.lang import compile_program

    rng = _random.Random(5)
    pieces = [COMMON_DECLS]
    for index, fn in enumerate(BAIT_PATTERNS + BUG_PATTERNS["NPD"][:2]):
        pieces.append("\n".join(fn(f"abl{index}", rng).lines))
    program = compile_program([("ablation.c", "\n".join(pieces))])

    def run(validate):
        config = AnalysisConfig(validate_paths=validate)
        return PATA(config=config).analyze(program)

    with_validation = benchmark.pedantic(lambda: run(True), rounds=1, iterations=1)
    without = run(False)
    assert len(without.reports) > len(with_validation.reports)
    assert with_validation.stats.dropped_false_bugs > 0


def test_frontend_compile_throughput(benchmark, harness):
    from repro.corpus import TENCENTOS, generate

    corpus = generate(TENCENTOS.scaled(min(1.0, harness.scale)))

    def run():
        from repro.lang import compile_program

        return compile_program(corpus.compiled_sources())

    program = benchmark(run)
    assert sum(1 for _ in program.functions()) > 10


def _phase_seconds(stats):
    return {
        "collect": round(stats.time_collect_seconds, 4),
        "presolve": round(stats.time_presolve_seconds, 4),
        "explore": round(stats.time_explore_seconds, 4),
        "match": round(stats.time_match_seconds, 4),
        "filter": round(stats.time_filter_seconds, 4),
    }


def test_parallel_vs_sequential_entry_analysis(benchmark, harness):
    """Sequential vs batch-streaming parallel P2 (the paper's per-entry
    threads, §4) on the largest generated corpus; writes
    ``BENCH_parallel.json`` at the repo root with per-phase timings, the
    speedup, and the determinism check.

    ``REPRO_BENCH_WORKERS`` overrides the worker count (default: one per
    CPU).  The benchmark is honest about its hardware: when the machine
    has fewer cores than workers the payload is stamped ``degraded`` and
    no speedup is headlined (workers time-slicing one core cannot beat
    sequential).  On a non-degraded run the end-to-end speedup must be
    ≥ 1.0 — only P2 (``explore``) scales with workers, so the Amdahl
    ceiling is ``total / (total - explore)``, also recorded.
    """
    import json
    import os
    import pathlib
    import time

    from repro.corpus import PROFILES_BY_NAME, generate
    from repro.lang import compile_program

    workers = int(os.environ.get("REPRO_BENCH_WORKERS") or 0) or (os.cpu_count() or 1)
    cpu_count = os.cpu_count() or 1
    degraded = cpu_count < workers
    corpus = generate(PROFILES_BY_NAME["linux"].scaled(harness.scale))
    program = compile_program(corpus.compiled_sources())

    started = time.perf_counter()
    sequential = PATA(config=AnalysisConfig(workers=1)).analyze(program)
    seq_seconds = time.perf_counter() - started

    def run_streamed():
        return PATA(config=AnalysisConfig(workers=workers)).analyze(program)

    started = time.perf_counter()
    parallel = benchmark.pedantic(run_streamed, rounds=1, iterations=1)
    par_seconds = time.perf_counter() - started

    identical = [r.render() for r in sequential.reports] == [r.render() for r in parallel.reports]
    speedup = round(seq_seconds / par_seconds, 3) if par_seconds else None
    seq_explore = sequential.stats.time_explore_seconds
    explore_speedup = (
        round(seq_explore / parallel.stats.time_explore_seconds, 3)
        if parallel.stats.time_explore_seconds
        else None
    )
    amdahl_ceiling = (
        round(seq_seconds / (seq_seconds - seq_explore), 3)
        if seq_seconds > seq_explore
        else None
    )
    payload = {
        "corpus": "linux",
        "scale": harness.scale,
        "cpu_count": cpu_count,
        "workers": parallel.stats.workers_used,
        "batches": parallel.stats.batches_dispatched,
        "entry_functions": parallel.stats.entry_functions,
        "degraded": degraded,
        "sequential_seconds": round(seq_seconds, 4),
        "parallel_seconds": round(par_seconds, 4),
        # A degraded run headlines no speedup: the number would measure
        # oversubscription, not the executor.
        "speedup": None if degraded else speedup,
        "explore_speedup": None if degraded else explore_speedup,
        "amdahl_ceiling": amdahl_ceiling,
        "phases_sequential": _phase_seconds(sequential.stats),
        "phases_parallel": _phase_seconds(parallel.stats),
        "identical_reports": identical,
        "reports": len(parallel.reports),
    }
    out = pathlib.Path(__file__).parent.parent / "BENCH_parallel.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    assert identical
    analyzed = (
        parallel.stats.entry_functions
        - parallel.stats.entries_skipped
        - parallel.stats.entries_cached
    )
    assert parallel.stats.workers_used == min(workers, analyzed)
    assert parallel.stats.batches_dispatched >= parallel.stats.workers_used
    if not degraded:
        assert speedup is not None and speedup >= 1.0, payload


def test_taint_checker_vs_naive_baseline(benchmark, harness):
    """The alias-aware SMT-discharged taint checker vs the grep-regime
    ``TaintNaive`` baseline on the taint-heavy ``taintlab`` corpus; writes
    ``BENCH_taint.json`` at the repo root with recall, bait false
    positives, wall seconds, and the prune-preservation check.  The
    checker must find every injected flow with zero bait hits, and
    pruning must never change a report byte."""
    import json
    import pathlib
    import time

    from repro.baselines import TaintNaive
    from repro.corpus import TAINTLAB, generate
    from repro.lang import compile_program

    corpus = generate(TAINTLAB)
    program = compile_program(corpus.compiled_sources())

    def found_uids(hits):
        uids = set()
        for gt in corpus.ground_truth:
            for kind, path, line in hits:
                if gt.covers(kind, path, line):
                    uids.add(gt.uid)
        return uids

    def bait_hits(hits):
        return [
            (path, line)
            for _, path, line in hits
            if any(
                b.path == path and b.line_start <= line <= b.line_end
                for b in corpus.bait_regions
            )
        ]

    def run_checker():
        return PATA(checker_spec="taint").analyze(program)

    started = time.perf_counter()
    checker = benchmark.pedantic(run_checker, rounds=1, iterations=1)
    checker_seconds = time.perf_counter() - started
    checker_hits = [(r.kind, r.sink_file, r.sink_line) for r in checker.reports]

    started = time.perf_counter()
    naive = TaintNaive().analyze(program)
    naive_seconds = time.perf_counter() - started
    naive_hits = [(f.kind, f.file, f.line) for f in naive.findings]

    unpruned = PATA(
        checker_spec="taint", config=AnalysisConfig(prune=False)
    ).analyze(program)
    identical = [r.render() for r in checker.reports] == [
        r.render() for r in unpruned.reports
    ]

    total = len(corpus.ground_truth)
    checker_found = found_uids(checker_hits)
    naive_found = found_uids(naive_hits)
    payload = {
        "corpus": "taintlab",
        "injected_flows": total,
        "checker_found": len(checker_found),
        "checker_bait_false_positives": len(bait_hits(checker_hits)),
        "checker_seconds": round(checker_seconds, 4),
        "naive_found": len(naive_found),
        "naive_bait_false_positives": len(bait_hits(naive_hits)),
        "naive_seconds": round(naive_seconds, 4),
        "dropped_false_bugs": checker.stats.dropped_false_bugs,
        "entries_skipped": checker.stats.entries_skipped,
        "identical_reports_with_prune_off": identical,
    }
    out = pathlib.Path(__file__).parent.parent / "BENCH_taint.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    assert len(checker_found) == total
    assert not bait_hits(checker_hits)
    assert len(naive_found) < total or bait_hits(naive_hits)
    assert identical


def test_race_checker_vs_eraser_baseline(benchmark, harness):
    """The alias-aware, SMT-discharged lockset race checker vs the
    lockset-only ``EraserLike`` baseline on the race-heavy ``racelab``
    corpus; writes ``BENCH_race.json`` at the repo root with recall, bait
    false positives, wall seconds, and the prune-preservation check.
    The checker must find every injected race with zero bait hits; the
    baseline must report at least one flag-serialized pair that stage-2
    pair validation discharges; and pruning must never change a report
    byte."""
    import json
    import pathlib
    import time

    from repro.baselines import EraserLike
    from repro.corpus import RACELAB, generate
    from repro.lang import compile_program

    corpus = generate(RACELAB)
    program = compile_program(corpus.compiled_sources())

    def found_uids(hits):
        uids = set()
        for gt in corpus.ground_truth:
            for kind, path, line in hits:
                if gt.covers(kind, path, line):
                    uids.add(gt.uid)
        return uids

    def bait_hits(hits):
        return [
            (path, line)
            for _, path, line in hits
            if any(
                b.path == path and b.line_start <= line <= b.line_end
                for b in corpus.bait_regions
            )
        ]

    def run_checker():
        return PATA(checker_spec="race").analyze(program)

    started = time.perf_counter()
    checker = benchmark.pedantic(run_checker, rounds=1, iterations=1)
    checker_seconds = time.perf_counter() - started
    checker_hits = [(r.kind, r.sink_file, r.sink_line) for r in checker.reports]

    started = time.perf_counter()
    eraser = EraserLike().analyze(program)
    eraser_seconds = time.perf_counter() - started
    eraser_hits = [(f.kind, f.file, f.line) for f in eraser.findings]

    unpruned = PATA(
        checker_spec="race", config=AnalysisConfig(prune=False)
    ).analyze(program)
    identical = [r.render() for r in checker.reports] == [
        r.render() for r in unpruned.reports
    ]

    total = len(corpus.ground_truth)
    checker_found = found_uids(checker_hits)
    eraser_found = found_uids(eraser_hits)
    payload = {
        "corpus": "racelab",
        "injected_races": total,
        "checker_found": len(checker_found),
        "checker_bait_false_positives": len(bait_hits(checker_hits)),
        "checker_seconds": round(checker_seconds, 4),
        "eraser_found": len(eraser_found),
        "eraser_bait_false_positives": len(bait_hits(eraser_hits)),
        "eraser_seconds": round(eraser_seconds, 4),
        "shared_accesses": checker.stats.shared_accesses,
        "race_pairs_matched": checker.stats.race_pairs_matched,
        "dropped_false_bugs": checker.stats.dropped_false_bugs,
        "identical_reports_with_prune_off": identical,
    }
    out = pathlib.Path(__file__).parent.parent / "BENCH_race.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    assert len(checker_found) == total
    assert not bait_hits(checker_hits)
    # The lockset-only regime reports the flag-serialized pairs that
    # stage 2 proves infeasible — the checker's precision edge.
    assert bait_hits(eraser_hits)
    assert checker.stats.dropped_false_bugs > 0
    assert identical


def test_xtaint_checker_vs_naive_baseline(benchmark, harness):
    """P2.6 cross-module taint vs the module-granular grep tier of
    ``TaintNaive`` on the firmware multi-image ``firmlab`` corpus; writes
    ``BENCH_xtaint.json`` at the repo root with recall, bait false
    positives, the naive tier's cross-module FP count, summary-layer
    cache behaviour, and a workers-1-vs-N × cold/warm-cache report-
    identity differential.  The checker must find every injected
    cross-module flow (border-source patterns are excluded: they need
    ``--taint-borders``) with zero bait hits; the naive tier must miss
    the relay chains and flag bait; reports must be byte-identical
    across every differential leg.  When the machine has fewer cores
    than the parallel leg's workers the payload is stamped ``degraded``
    (the identity checks still gate)."""
    import json
    import os
    import pathlib
    import tempfile
    import time

    from repro.baselines import TaintNaive
    from repro.baselines.taint_naive import CROSS_MODULE_PREFIX
    from repro.corpus import FIRMLAB, generate
    from repro.lang import compile_program

    corpus = generate(FIRMLAB)
    program = compile_program(corpus.compiled_sources())
    parallel_workers = 4
    cpu_count = os.cpu_count() or 1
    degraded = cpu_count < parallel_workers

    #: the default-config recall denominator: border-source ground truth
    #: is only reachable under --taint-borders
    flows = [g for g in corpus.ground_truth if not g.requires.border]

    def found_uids(hits):
        uids = set()
        for gt in flows:
            for kind, path, line in hits:
                if gt.covers(kind, path, line):
                    uids.add(gt.uid)
        return uids

    def bait_hits(hits):
        return [
            (path, line)
            for _, path, line in hits
            if any(
                b.path == path and b.line_start <= line <= b.line_end
                for b in corpus.bait_regions
            )
        ]

    def run_checker():
        return PATA(checker_spec="xtaint").analyze(program)

    started = time.perf_counter()
    checker = benchmark.pedantic(run_checker, rounds=1, iterations=1)
    checker_seconds = time.perf_counter() - started
    checker_hits = [(r.kind, r.sink_file, r.sink_line) for r in checker.reports]
    baseline_renders = [r.render() for r in checker.reports]

    started = time.perf_counter()
    naive = TaintNaive().analyze(program)
    naive_seconds = time.perf_counter() - started
    naive_hits = [(f.kind, f.file, f.line) for f in naive.findings]
    naive_cross = [
        f for f in naive.findings if f.message.startswith(CROSS_MODULE_PREFIX)
    ]
    naive_cross_fp = len(
        bait_hits([(f.kind, f.file, f.line) for f in naive_cross])
    )

    # Differential: workers 1 vs N, each with a cold then warm cache
    # (fresh cache dir per worker count, so both cold legs are cold).
    legs = {}
    summaries_cached_warm = 0
    for workers in (1, parallel_workers):
        with tempfile.TemporaryDirectory() as cache_dir:
            for leg in ("cold", "warm"):
                config = AnalysisConfig(
                    workers=workers, cache_dir=cache_dir, cache_mode="rw"
                )
                started = time.perf_counter()
                result = PATA(config=config, checker_spec="xtaint").analyze(program)
                legs[f"workers{workers}_{leg}"] = {
                    "seconds": round(time.perf_counter() - started, 4),
                    "identical": [r.render() for r in result.reports]
                    == baseline_renders,
                }
                if leg == "warm":
                    summaries_cached_warm = max(
                        summaries_cached_warm, result.stats.summaries_cached
                    )

    checker_found = found_uids(checker_hits)
    naive_found = found_uids(naive_hits)
    payload = {
        "corpus": "firmlab",
        "injected_cross_flows": len(flows),
        "injected_border_flows": len(corpus.ground_truth) - len(flows),
        "degraded": degraded,
        "checker_found": len(checker_found),
        "checker_bait_false_positives": len(bait_hits(checker_hits)),
        "checker_seconds": round(checker_seconds, 4),
        "taint_flows_recorded": checker.stats.taint_flows_recorded,
        "xtaint_pairs_matched": checker.stats.xtaint_pairs_matched,
        "time_xmatch_seconds": round(checker.stats.time_xmatch_seconds, 4),
        "summaries_cached_warm": summaries_cached_warm,
        "naive_found": len(naive_found),
        "naive_bait_false_positives": len(bait_hits(naive_hits)),
        "naive_cross_module_findings": len(naive_cross),
        "naive_cross_module_false_positives": naive_cross_fp,
        "naive_seconds": round(naive_seconds, 4),
        "dropped_false_bugs": checker.stats.dropped_false_bugs,
        "differential": legs,
    }
    out = pathlib.Path(__file__).parent.parent / "BENCH_xtaint.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    assert len(checker_found) == len(flows)
    assert not bait_hits(checker_hits)
    # The grep tier misses the relay chains (the middle image has no
    # source) and flags the bait shapes the checker discharges.
    assert len(naive_found) < len(flows)
    assert naive_cross_fp > 0
    assert summaries_cached_warm > 0
    assert all(leg["identical"] for leg in legs.values())


def test_pruned_vs_unpruned_entry_analysis(benchmark, harness):
    """The P1.5 relevance pre-analysis on vs off (``--no-prune``) on the
    largest generated corpus; writes ``BENCH_prune.json`` at the repo
    root with entries skipped, paths explored, wall seconds, and the
    report-preservation check.  Pruning must explore strictly fewer
    paths and must never change a single report byte."""
    import json
    import pathlib
    import time

    from repro.corpus import PROFILES_BY_NAME, generate
    from repro.lang import compile_program

    corpus = generate(PROFILES_BY_NAME["linux"].scaled(harness.scale))
    program = compile_program(corpus.compiled_sources())

    started = time.perf_counter()
    unpruned = PATA(config=AnalysisConfig(prune=False)).analyze(program)
    unpruned_seconds = time.perf_counter() - started

    def run_pruned():
        return PATA(config=AnalysisConfig(prune=True)).analyze(program)

    started = time.perf_counter()
    pruned = benchmark.pedantic(run_pruned, rounds=1, iterations=1)
    pruned_seconds = time.perf_counter() - started

    identical = [r.render() for r in unpruned.reports] == [r.render() for r in pruned.reports]
    payload = {
        "corpus": "linux",
        "scale": harness.scale,
        "entry_functions": pruned.stats.entry_functions,
        "entries_skipped": pruned.stats.entries_skipped,
        "blocks_pruned": pruned.stats.blocks_pruned,
        "paths_pruned": pruned.stats.paths_pruned,
        "paths_explored_pruned": pruned.stats.explored_paths,
        "paths_explored_unpruned": unpruned.stats.explored_paths,
        "pruned_seconds": round(pruned_seconds, 4),
        "unpruned_seconds": round(unpruned_seconds, 4),
        "speedup": round(unpruned_seconds / pruned_seconds, 3) if pruned_seconds else None,
        "identical_reports": identical,
        "reports": len(pruned.reports),
    }
    out = pathlib.Path(__file__).parent.parent / "BENCH_prune.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    assert identical
    assert pruned.stats.entries_skipped > 0
    assert pruned.stats.explored_paths < unpruned.stats.explored_paths


def test_incremental_cold_warm_edit(benchmark, harness, tmp_path):
    """The incremental cache end-to-end (compile + analyze) on the
    largest generated corpus; writes ``BENCH_incremental.json`` at the
    repo root with cold / warm / one-function-edit timings.

    Three invariants are asserted: all four report sets (baseline, cold,
    warm, edit-vs-rebuilt-baseline) are byte-identical; the fully-warm
    run is at least 5x faster end-to-end than the cache-off run (2x at
    reduced ``REPRO_BENCH_SCALE``, where fixed overheads dominate); and
    the one-function edit re-analyzes only the dirty closure, never the
    whole entry list."""
    import json
    import pathlib
    import time

    from repro.corpus import PROFILES_BY_NAME, generate
    from repro.incremental import compile_with_cache, open_store
    from repro.lang import compile_program

    helper_v1 = """
static int bench_helper(int n) {
    return n + 1;
}
int bench_entry_hot(int n) {
    int *p = malloc(8);
    if (!p) return -1;
    *p = bench_helper(n);
    free(p);
    return 0;
}
int bench_entry_cold(int n) {
    int *q = malloc(8);
    if (!q) return -1;
    *q = n;
    free(q);
    return 0;
}
"""
    helper_v2 = helper_v1.replace("return n + 1;", "return n + 2;")

    corpus = generate(PROFILES_BY_NAME["linux"].scaled(harness.scale))
    base_sources = list(corpus.compiled_sources())
    sources = base_sources + [("bench_extra.c", helper_v1)]
    edited = base_sources + [("bench_extra.c", helper_v2)]
    cache_dir = str(tmp_path / "cache")

    def run_off(srcs):
        started = time.perf_counter()
        result = PATA(config=AnalysisConfig(), checker_spec="all").analyze(
            compile_program(srcs)
        )
        return result, time.perf_counter() - started

    def run_cached(srcs):
        started = time.perf_counter()
        config = AnalysisConfig(cache_dir=cache_dir, cache_mode="rw")
        store = open_store(cache_dir, "rw")
        program = compile_with_cache(srcs, store)
        if store is not None:
            store.commit()
        result = PATA(config=config, checker_spec="all").analyze(program)
        return result, time.perf_counter() - started

    baseline, off_seconds = run_off(sources)
    cold, cold_seconds = run_cached(sources)

    def run_warm():
        return run_cached(sources)

    warm, first_warm = benchmark.pedantic(run_warm, rounds=1, iterations=1)
    # Best of three: the warm leg is sub-second, so a single scheduler
    # hiccup would dominate a lone measurement.
    warm_seconds = min([first_warm] + [run_cached(sources)[1] for _ in range(2)])

    edit_baseline, _ = run_off(edited)
    edit, edit_seconds = run_cached(edited)

    def text(result):
        return [r.render() for r in result.reports]

    identical = (
        text(cold) == text(baseline)
        and text(warm) == text(baseline)
        and text(edit) == text(edit_baseline)
    )
    speedup = off_seconds / warm_seconds if warm_seconds else None
    payload = {
        "corpus": "linux",
        "scale": harness.scale,
        "entry_functions": cold.stats.entry_functions,
        "cache_off_seconds": round(off_seconds, 4),
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "edit_seconds": round(edit_seconds, 4),
        "warm_speedup": round(speedup, 3) if speedup else None,
        "warm_entries_cached": warm.stats.entries_cached,
        "warm_entries_reanalyzed": warm.stats.entries_reanalyzed,
        "edit_entries_reanalyzed": edit.stats.entries_reanalyzed,
        "edit_entries_cached": edit.stats.entries_cached,
        "identical_reports": identical,
        "reports": len(warm.reports),
    }
    out = pathlib.Path(__file__).parent.parent / "BENCH_incremental.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    assert identical
    assert warm.stats.entries_reanalyzed == 0
    # The edit dirties bench_entry_hot's closure only.
    assert 0 < edit.stats.entries_reanalyzed < cold.stats.entries_reanalyzed
    assert edit.stats.entries_cached > 0
    assert speedup is not None and speedup >= (5.0 if harness.scale >= 1.0 else 2.0)


def test_alias_tier_cold_warm(benchmark, harness, tmp_path):
    """The tiered alias analysis (P1.7 Steensgaard pre-pass + singleton
    fast paths) on/off at the headline corpus; writes ``BENCH_alias.json``
    at the repo root with interleaved cold pairs, warm-cache timings, and
    per-phase breakdowns.

    Measurement: single cold runs swing well over the effect size on a
    busy machine, so the bench times several *interleaved* off/on pairs
    and headlines ``min(off)/min(on)`` (noise only ever adds time);
    per-pair ratios and their median are recorded alongside.  Honest
    about its configuration: at reduced ``REPRO_BENCH_SCALE`` fixed
    overheads dominate and the payload is stamped ``degraded`` with no
    headlined speedup (ROADMAP's 2x target is defined at scale 4.0).
    Identical reports across every run — tier on/off, cold/warm — are
    asserted unconditionally: the tier is an optimization, never a
    precision trade."""
    import json
    import pathlib
    import statistics
    import time

    from repro.corpus import PROFILES_BY_NAME, generate
    from repro.incremental import compile_with_cache, open_store
    from repro.lang import compile_program

    headline_scale = 4.0
    degraded = harness.scale < headline_scale
    pairs = 3

    corpus = generate(PROFILES_BY_NAME["linux"].scaled(harness.scale))
    sources = list(corpus.compiled_sources())
    program = compile_program(sources)

    def run_cold(tier):
        started = time.perf_counter()
        result = PATA(
            config=AnalysisConfig(alias_tier=tier), checker_spec="all"
        ).analyze(program)
        return result, time.perf_counter() - started

    def text(result):
        return [r.render() for r in result.reports]

    cold_pairs = []
    off_result = on_result = None
    for _ in range(pairs):
        off_result, off_seconds = run_cold(False)
        on_result, on_seconds = run_cold(True)
        cold_pairs.append((off_seconds, on_seconds))
    benchmark.pedantic(lambda: run_cold(True), rounds=1, iterations=1)

    baseline = text(off_result)
    identical = text(on_result) == baseline

    best_off = min(off for off, _ in cold_pairs)
    best_on = min(on for _, on in cold_pairs)
    ratios = [off / on for off, on in cold_pairs]
    speedup = round(best_off / best_on, 3) if best_on else None

    def run_cached(tier, cache_dir):
        started = time.perf_counter()
        config = AnalysisConfig(
            alias_tier=tier, cache_dir=cache_dir, cache_mode="rw"
        )
        store = open_store(cache_dir, "rw")
        cached_program = compile_with_cache(sources, store)
        if store is not None:
            store.commit()
        result = PATA(config=config, checker_spec="all").analyze(cached_program)
        return result, time.perf_counter() - started

    dir_off = str(tmp_path / "cache-off")
    dir_on = str(tmp_path / "cache-on")
    _, cold_cached_off = run_cached(False, dir_off)
    _, cold_cached_on = run_cached(True, dir_on)
    warm_off, warm_off_seconds = run_cached(False, dir_off)
    warm_on, warm_on_seconds = run_cached(True, dir_on)
    identical = (
        identical
        and text(warm_off) == baseline
        and text(warm_on) == baseline
    )

    phases_on = _phase_seconds(on_result.stats)
    phases_on["unify"] = round(on_result.stats.time_unify_seconds, 4)
    payload = {
        "corpus": "linux",
        "scale": harness.scale,
        "headline_scale": headline_scale,
        "spec": "all",
        "degraded": degraded,
        "cold_pairs": [
            {"off_seconds": round(off, 4), "on_seconds": round(on, 4),
             "ratio": round(off / on, 3)}
            for off, on in cold_pairs
        ],
        "cold_off_seconds": round(best_off, 4),
        "cold_on_seconds": round(best_on, 4),
        # A degraded (reduced-scale) run headlines no speedup: fixed
        # overheads would measure the harness, not the tier.
        "speedup": None if degraded else speedup,
        "speedup_median_of_pairs": None if degraded else round(
            statistics.median(ratios), 3
        ),
        "warm": {
            "cold_off_seconds": round(cold_cached_off, 4),
            "cold_on_seconds": round(cold_cached_on, 4),
            "off_seconds": round(warm_off_seconds, 4),
            "on_seconds": round(warm_on_seconds, 4),
            # Warm runs replay cached entry results, so the tier is
            # structurally irrelevant there — recorded, never gated.
            "speedup": round(warm_off_seconds / warm_on_seconds, 3)
            if warm_on_seconds else None,
        },
        "phases_off": _phase_seconds(off_result.stats),
        "phases_on": phases_on,
        "singletons_proven": on_result.stats.singletons_proven,
        "alias_cells": on_result.stats.alias_cells,
        "entry_functions": on_result.stats.entry_functions,
        "identical_reports": identical,
        "reports": len(on_result.reports),
    }
    out = pathlib.Path(__file__).parent.parent / "BENCH_alias.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    assert identical
    assert on_result.stats.singletons_proven > 0
    assert on_result.stats.alias_cells > 0
    assert off_result.stats.singletons_proven == 0
    assert any(row.cached for row in warm_on.stats.per_entry)
    if not degraded:
        assert speedup is not None and speedup >= 1.5, payload


def test_ptaflow_cold_warm(benchmark, harness, tmp_path):
    """The P1.8 flow-sensitive middle tier (``--alias-tier flow``)
    against the untiered engine at the headline corpus; writes
    ``BENCH_ptaflow.json`` at the repo root.

    Same measurement discipline as the P1.7 bench: several *interleaved*
    cold off/flow pairs with a ``min(off)/min(flow)`` headline (noise
    only ever adds time), warm-cache legs over per-tier cache
    directories (the facts are their own cache layer, so the warm flow
    leg replays them), and honest ``degraded`` stamping below the
    headline scale — ROADMAP's 2x target for this tier is defined at
    scale 4.0, spec ``all``.  Identical reports across every run are
    asserted unconditionally: the ladder is an optimization, never a
    precision trade."""
    import json
    import pathlib
    import statistics
    import time

    from repro.corpus import PROFILES_BY_NAME, generate
    from repro.incremental import compile_with_cache, open_store
    from repro.lang import compile_program

    headline_scale = 4.0
    degraded = harness.scale < headline_scale
    pairs = 3

    corpus = generate(PROFILES_BY_NAME["linux"].scaled(harness.scale))
    sources = list(corpus.compiled_sources())
    program = compile_program(sources)

    def run_cold(tier):
        started = time.perf_counter()
        result = PATA(
            config=AnalysisConfig(alias_tier=tier), checker_spec="all"
        ).analyze(program)
        return result, time.perf_counter() - started

    def text(result):
        return [r.render() for r in result.reports]

    cold_pairs = []
    off_result = flow_result = None
    for _ in range(pairs):
        off_result, off_seconds = run_cold("off")
        flow_result, flow_seconds = run_cold("flow")
        cold_pairs.append((off_seconds, flow_seconds))
    benchmark.pedantic(lambda: run_cold("flow"), rounds=1, iterations=1)

    baseline = text(off_result)
    identical = text(flow_result) == baseline

    best_off = min(off for off, _ in cold_pairs)
    best_flow = min(flow for _, flow in cold_pairs)
    ratios = [off / flow for off, flow in cold_pairs]
    speedup = round(best_off / best_flow, 3) if best_flow else None

    def run_cached(tier, cache_dir):
        started = time.perf_counter()
        config = AnalysisConfig(
            alias_tier=tier, cache_dir=cache_dir, cache_mode="rw"
        )
        store = open_store(cache_dir, "rw")
        cached_program = compile_with_cache(sources, store)
        if store is not None:
            store.commit()
        result = PATA(config=config, checker_spec="all").analyze(cached_program)
        return result, time.perf_counter() - started

    dir_off = str(tmp_path / "cache-off")
    dir_flow = str(tmp_path / "cache-flow")
    _, cold_cached_off = run_cached("off", dir_off)
    _, cold_cached_flow = run_cached("flow", dir_flow)
    warm_off, warm_off_seconds = run_cached("off", dir_off)
    warm_flow, warm_flow_seconds = run_cached("flow", dir_flow)
    identical = (
        identical
        and text(warm_off) == baseline
        and text(warm_flow) == baseline
    )

    phases_flow = _phase_seconds(flow_result.stats)
    phases_flow["unify"] = round(flow_result.stats.time_unify_seconds, 4)
    phases_flow["flow"] = round(flow_result.stats.time_flow_seconds, 4)
    payload = {
        "corpus": "linux",
        "scale": harness.scale,
        "headline_scale": headline_scale,
        "spec": "all",
        "degraded": degraded,
        "cold_pairs": [
            {"off_seconds": round(off, 4), "flow_seconds": round(flow, 4),
             "ratio": round(off / flow, 3)}
            for off, flow in cold_pairs
        ],
        "cold_off_seconds": round(best_off, 4),
        "cold_flow_seconds": round(best_flow, 4),
        # A degraded (reduced-scale) run headlines no speedup: fixed
        # overheads would measure the harness, not the tier.
        "speedup": None if degraded else speedup,
        "speedup_median_of_pairs": None if degraded else round(
            statistics.median(ratios), 3
        ),
        "warm": {
            "cold_off_seconds": round(cold_cached_off, 4),
            "cold_flow_seconds": round(cold_cached_flow, 4),
            "off_seconds": round(warm_off_seconds, 4),
            "flow_seconds": round(warm_flow_seconds, 4),
            # Warm runs replay cached entry results (and the facts
            # layer), so recorded, never gated.
            "speedup": round(warm_off_seconds / warm_flow_seconds, 3)
            if warm_flow_seconds else None,
        },
        "phases_off": _phase_seconds(off_result.stats),
        "phases_flow": phases_flow,
        "singletons_proven": flow_result.stats.singletons_proven,
        "must_singletons": flow_result.stats.must_singletons,
        "strong_updates": flow_result.stats.strong_updates,
        "time_flow_seconds": round(flow_result.stats.time_flow_seconds, 4),
        "entry_functions": flow_result.stats.entry_functions,
        "identical_reports": identical,
        "reports": len(flow_result.reports),
    }
    out = pathlib.Path(__file__).parent.parent / "BENCH_ptaflow.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    assert identical
    assert flow_result.stats.singletons_proven > 0
    assert flow_result.stats.must_singletons > 0
    assert off_result.stats.must_singletons == 0
    assert any(row.cached for row in warm_flow.stats.per_entry)
    if not degraded:
        assert speedup is not None and speedup >= 2.0, payload


def test_serve_resident_vs_cold(benchmark, harness, tmp_path):
    """Analysis-as-a-service: a resident daemon answering a warm query
    vs a cold one-shot CLI run (fresh interpreter, fresh caches) on the
    same corpus; writes ``BENCH_serve.json`` at the repo root.

    The cold leg is the honest thing a daemon replaces: a full
    ``python -m repro check`` subprocess — interpreter start, imports,
    compile, analysis.  Two warm legs are measured over the daemon's
    unix socket: the *replay* tier (a byte-identical repeated
    ``check_module``, the daemon steady state) and the *cache* tier (a
    never-seen-before ``check_diff`` overlay forcing a memo miss, so
    modules and entry outcomes resolve out of the resident store).
    Responses must be byte-identical to the cold CLI's stdout.  The 8x
    replay headline is defined at scale >= 1.0; a reduced
    ``REPRO_BENCH_SCALE`` run is stamped ``degraded`` and gates only a
    2x floor (fixed per-request costs dominate tiny corpora).
    """
    import json
    import os
    import pathlib
    import subprocess
    import sys
    import time

    from repro.corpus import PROFILES_BY_NAME, generate
    from repro.serve import PataServer, ServeClient

    corpus = generate(PROFILES_BY_NAME["linux"].scaled(harness.scale))
    paths = []
    for name, text in corpus.compiled_sources():
        path = tmp_path / name.replace("/", "__")
        path.write_text(text)
        paths.append(str(path))

    repo_root = pathlib.Path(__file__).parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo_root / "src")

    def run_cold_cli():
        started = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "check", *paths],
            capture_output=True, text=True, env=env,
        )
        assert proc.returncode in (0, 1), proc.stderr
        return proc.stdout, time.perf_counter() - started

    cold_samples = [run_cold_cli() for _ in range(2)]
    cli_output = cold_samples[0][0]
    assert all(out == cli_output for out, _ in cold_samples)
    cold_seconds = min(seconds for _, seconds in cold_samples)

    server = PataServer(roots=paths, socket_path=str(tmp_path / "pata.sock"))
    server.start()
    try:
        client = ServeClient(socket_path=server.socket_path, timeout=600)
        warmup = client.request({"op": "check_module"})
        assert warmup["ok"]

        def warm_query():
            started = time.perf_counter()
            response = client.request({"op": "check_module"})
            return response, time.perf_counter() - started

        first, first_seconds = benchmark.pedantic(
            warm_query, rounds=1, iterations=1
        )
        # Best of three: a warm round-trip is milliseconds, so one
        # scheduler hiccup would dominate a lone measurement.
        samples = [(first, first_seconds)] + [warm_query() for _ in range(2)]
        warm_seconds = min(seconds for _, seconds in samples)
        warm = samples[0][0]

        def cache_tier_query(i):
            # A nonce source the session has never seen: the request
            # fingerprint misses the replay memo, so this times the
            # resident *cache* tier (module + outcome replay from RAM).
            overlay = {"bench_nonce.c": f"int bench_nonce(void) {{ return {i}; }}"}
            started = time.perf_counter()
            response = client.request({"op": "check_diff", "overlay": overlay})
            return response, time.perf_counter() - started

        tier2_samples = [cache_tier_query(i) for i in range(3)]
        tier2_seconds = min(seconds for _, seconds in tier2_samples)
        assert all(
            response["ok"] and not response["serve"]["replayed"]
            for response, _ in tier2_samples
        )
        status = client.request({"op": "status"})
        client.close()
    finally:
        server.request_shutdown()
        server.serve_forever()
        server.close()

    identical = all(
        response["output"] == cli_output for response, _ in samples
    ) and warmup["output"] == cli_output
    degraded = harness.scale < 1.0
    speedup = cold_seconds / warm_seconds if warm_seconds else None
    tier2_speedup = cold_seconds / tier2_seconds if tier2_seconds else None
    payload = {
        "corpus": "linux",
        "scale": harness.scale,
        "files": len(paths),
        "cold_cli_seconds": round(cold_seconds, 4),
        "warm_query_seconds": round(warm_seconds, 6),
        "cache_tier_query_seconds": round(tier2_seconds, 6),
        "warmup_analysis_seconds": warmup["serve"]["analysis_seconds"],
        "warm_replayed": warm["serve"]["replayed"],
        "warm_entries_reanalyzed": warm["serve"]["entries_reanalyzed"],
        "warm_cache_misses": warm["serve"]["cache_misses"],
        "resident_cache_entries": warm["serve"]["resident_cache_entries"],
        "requests_served": status["requests_served"],
        "degraded": degraded,
        # A degraded (reduced-scale) run headlines no speedup: it would
        # measure fixed per-request overheads, not residency.
        "speedup": None if degraded else (round(speedup, 2) if speedup else None),
        "speedup_measured": round(speedup, 2) if speedup else None,
        "cache_tier_speedup": round(tier2_speedup, 2) if tier2_speedup else None,
        "identical_output": identical,
        "reports": warm["bugs"],
    }
    out = repo_root / "BENCH_serve.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    assert identical
    assert warm["serve"]["entries_reanalyzed"] == 0
    assert speedup is not None and speedup >= (8.0 if not degraded else 2.0), payload
    # The cache tier (memo miss, resident store) must still beat a cold
    # CLI run end-to-end, at any scale.
    assert tier2_speedup is not None and tier2_speedup >= 2.0, payload
