"""Table 4 — information about the four checked OSes.

Paper: Linux 5.6 (28,260 files / 14.2M LOC), Zephyr 2.1.0 (1,669 / 383K),
RIOT 2020.04 (4,402 / 1,575K), TencentOS-tiny (1,497 / 572K).
Expected shape at ~1/400 scale: Linux ≫ RIOT > Zephyr ≳ TencentOS.
"""

from conftest import save_result

from repro.evaluation import table4_os_info


def test_table4_os_info(benchmark, harness, results_dir):
    data, text = benchmark.pedantic(lambda: table4_os_info(harness), rounds=1, iterations=1)
    print("\n" + text)
    save_result(results_dir, "table4", text)
    # Shape: Linux is by far the largest; relative order holds.
    assert data["linux"]["loc"] > 3 * data["riot"]["loc"]
    assert data["riot"]["loc"] > data["zephyr"]["loc"]
    assert data["zephyr"]["loc"] > 0 and data["tencentos"]["loc"] > 0
