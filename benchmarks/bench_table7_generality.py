"""Table 7 — the three additional checkers (double-lock, array-index
underflow, division-by-zero) on Linux.

Paper: 52 found / 43 real in total (22/18 double-lock, 23/20 underflow,
7/5 division-by-zero), each checker implemented in 100-200 lines.
Expected shape: every extra checker finds real bugs with few false
positives, without disturbing the three primary checkers.
"""

import inspect

from conftest import save_result

from repro.evaluation import table7_generality
from repro.typestate.checkers import divzero, locks, underflow


def test_table7_generality(benchmark, harness, results_dir):
    data, text = benchmark.pedantic(lambda: table7_generality(harness), rounds=1, iterations=1)
    print("\n" + text)
    save_result(results_dir, "table7", text)

    assert data["total"]["real"] >= 3  # at least one real bug per checker
    for kind in ("DOUBLE_LOCK", "ARRAY_UNDERFLOW", "DIV_BY_ZERO"):
        assert data[kind]["found"] >= data[kind]["real"] >= 1


def test_checkers_are_paper_sized():
    """§5.1/§5.5: 'each checker is implemented with just 100-200 lines'."""
    for module in (locks, underflow, divzero):
        loc = len(inspect.getsource(module).splitlines())
        assert loc <= 220, f"{module.__name__} has {loc} lines"
