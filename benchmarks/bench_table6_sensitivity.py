"""Table 6 — sensitivity analysis: PATA vs PATA-NA on Linux.

Paper: PATA-NA finds 620 bugs / 194 real (69% FP) vs PATA's 627 / 454
(28% FP); every PATA-NA real bug is also found by PATA; PATA-NA is
faster (8h19m vs 33h01m) because it skips alias computation but loses
the typestate/constraint merging.
"""

from conftest import save_result

from repro.evaluation import table6_sensitivity


def test_table6_sensitivity(benchmark, harness, results_dir):
    data, text = benchmark.pedantic(lambda: table6_sensitivity(harness), rounds=1, iterations=1)
    print("\n" + text)
    save_result(results_dir, "table6", text)

    pata, na = data["pata"], data["pata_na"]
    # The ablation's headline: aliasing buys accuracy.
    assert pata["real"] > na["real"]
    assert na["fp_rate"] > pata["fp_rate"] + 0.15
    # Paper: "These 194 real bugs are all found by PATA."
    assert na["matched"] <= pata["matched"]
    print(f"PATA fp={pata['fp_rate']:.0%} (paper 28%), "
          f"PATA-NA fp={na['fp_rate']:.0%} (paper 69%)")
    print(f"PATA-only real bugs: {len(pata['matched'] - na['matched'])} (paper: 260)")
