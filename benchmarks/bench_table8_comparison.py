"""Table 8 — comparison against the seven baseline tool regimes.

Paper shapes to reproduce:
* PATA finds the most real bugs on every OS, with a lower FP rate;
* CSA is the strongest baseline by found count but ~83% FP;
* Smatch/CSA cannot build the IoT OSes; Infer cannot build Linux;
* Saber and SVF run out of memory on the Linux kernel;
* 328 real bugs are unique to PATA, 27 (in non-compiled files) are
  unique to the source-based tools.
"""

from conftest import save_result

from repro.evaluation import table8_comparison, unique_real_bugs_vs_tools


def test_table8_comparison(benchmark, harness, results_dir):
    data, text = benchmark.pedantic(lambda: table8_comparison(harness), rounds=1, iterations=1)
    print("\n" + text)
    save_result(results_dir, "table8", text)

    # (1) PATA leads every OS on real bugs.
    for os_name, os_data in data.items():
        pata_real = os_data["pata"]["real"]
        for tool, cell in os_data.items():
            if tool == "pata" or cell.get("status") != "ok":
                continue
            assert cell["real"] <= pata_real, f"{tool} beats PATA on {os_name}"

    # (2) Saber/SVF OOM exactly on the Linux-profile corpus.
    assert data["linux"]["saber-like"]["status"] == "oom"
    assert data["linux"]["svf-null"]["status"] == "oom"
    for os_name in ("zephyr", "riot", "tencentos"):
        assert data[os_name]["saber-like"]["status"] == "ok"
        assert data[os_name]["svf-null"]["status"] == "ok"

    # (3) Build-failure cells mirror the paper.
    assert data["linux"]["infer-like"]["status"] == "compile_error"
    assert data["riot"]["smatch-like"]["status"] == "compile_error"
    assert data["riot"]["csa-like"]["status"] == "compile_error"

    # (4) CSA is the strongest baseline by found count on Linux.
    linux_found = {
        tool: cell.get("found", 0)
        for tool, cell in data["linux"].items()
        if tool != "pata" and cell.get("status") == "ok"
    }
    assert max(linux_found, key=linux_found.get) == "csa-like"

    # (5) Unique-bug balance.
    pata_only, missed_by_pata = unique_real_bugs_vs_tools(data)
    print(f"unique to PATA: {pata_only} (paper: 328); "
          f"missed by PATA: {missed_by_pata} (paper: 27)")
    assert pata_only > 3 * missed_by_pata
