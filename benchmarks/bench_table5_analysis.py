"""Table 5 — PATA's analysis results on the four OSes.

Paper (totals): 18.4K/35.8K files analyzed, 10.3M/16.8M LOC, typestates
23.0G alias-aware vs 45.8G unaware (-49.8%), SMT constraints 244M vs
1,920M (-87.3%), 18.8M repeated + 54.7K false bugs dropped, 797 found /
574 real (28% FP), 35h29m.

Expected shapes here: ~85% of files analyzed (config exclusions), about
half the typestates and well under half the SMT constraints relative to
the alias-unaware accounting, FP rate ≲ 35%, Linux dominating all
absolute counts.
"""

from conftest import save_result

from repro.evaluation import table5_analysis


def test_table5_analysis(benchmark, harness, results_dir):
    data, text = benchmark.pedantic(lambda: table5_analysis(harness), rounds=1, iterations=1)
    print("\n" + text)
    save_result(results_dir, "table5", text)

    total = data["total"]
    # Alias-aware savings (the headline Table 5 claim).
    typestate_saving = 1 - total["typestates_aware"] / total["typestates_unaware"]
    smt_saving = 1 - total["smt_aware"] / total["smt_unaware"]
    print(f"typestate saving: {typestate_saving:.1%} (paper: 49.8%)")
    print(f"SMT constraint saving: {smt_saving:.1%} (paper: 87.3%)")
    assert typestate_saving > 0.30
    assert smt_saving > 0.45

    # Bug-detection accuracy.
    fp_rate = 1 - total["real"] / total["found"]
    print(f"false-positive rate: {fp_rate:.1%} (paper: 28%)")
    assert fp_rate < 0.40
    assert total["real"] > 100  # enough signal at scale 1.0

    # Repeated/false drops both occur.
    assert total["dropped_repeated"] > 0
    assert total["dropped_false"] > 0

    # Linux dominates.
    assert data["linux"]["real"] > sum(
        data[name]["real"] for name in ("zephyr", "riot", "tencentos")
    ) / 2
