"""Shared fixtures for the benchmark suite.

Each ``bench_*`` module regenerates one table or figure of the paper
(see DESIGN.md §5 for the index).  The rendered tables are also written
to ``benchmarks/results/`` so EXPERIMENTS.md can be refreshed from them.

``REPRO_BENCH_SCALE`` (default 1.0) scales the corpora; the full scale
matches the numbers recorded in EXPERIMENTS.md.
"""

import os
import pathlib

import pytest

from repro.evaluation import EvaluationHarness

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def harness():
    """One harness per session: corpora and PATA runs are cached across
    benchmark modules, so each table only pays for what it adds."""
    return EvaluationHarness(scale=SCALE)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir, name, text):
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    return path
