"""Dynamic confirmation — the principled analogue of Table 5's
"Confirmed bugs" row.

The paper's 206/574 confirmations came from OS developers re-deriving
each report.  Here every real PATA report is re-executed in the concrete
interpreter over a grid of adversarial inputs; a report is *confirmed*
when the matching fault fires at the reported location (or, for leaks,
when the allocation is provably unreachable at exit).

Expected shape: a large majority (>80%) of ground-truth-matching reports
confirm — static findings on this corpus are demonstrably real, not
pattern coincidences.
"""

from conftest import save_result

from repro import PATA
from repro.evaluation import render_table
from repro.interp import DynamicConfirmer
from repro.typestate import BugKind


def test_dynamic_confirmation_rate(benchmark, harness, results_dir):
    def run():
        rows = []
        total_real = total_confirmed = 0
        for profile in harness.profiles:
            osrun = harness.run_pata(profile, all_checkers=True, kinds=tuple(BugKind))
            corpus, program = osrun.corpus, osrun.program
            real_reports = [
                r for r in osrun.pata_result.reports
                if any(g.covers(r.kind, r.sink_file, r.sink_line) for g in corpus.ground_truth)
            ]
            confirmer = DynamicConfirmer(program, max_runs=60)
            confirmed = sum(1 for c in confirmer.confirm_all(real_reports) if c.confirmed)
            rows.append([profile.name, len(real_reports), confirmed,
                         f"{confirmed / max(1, len(real_reports)):.0%}"])
            total_real += len(real_reports)
            total_confirmed += confirmed
        rows.append(["total", total_real, total_confirmed,
                     f"{total_confirmed / max(1, total_real):.0%}"])
        return rows, total_real, total_confirmed

    rows, total_real, total_confirmed = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ["OS", "Real reports", "Dynamically confirmed", "Rate"], rows,
        "Dynamic confirmation of PATA's real reports (cf. Table 5 'Confirmed bugs')",
    )
    print("\n" + text)
    save_result(results_dir, "confirmation", text)
    assert total_real > 0
    assert total_confirmed / total_real >= 0.8
