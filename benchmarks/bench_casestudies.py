"""Case studies (Fig. 1, Fig. 3, Fig. 9, Fig. 12) as micro-benchmarks.

Each benchmark runs full PATA (compile → explore → validate) on a
faithful mini-C replica of one published bug and asserts the expected
verdict, timing the end-to-end pipeline on a realistic single-file
input.
"""

import pytest

from repro import PATA
from repro.typestate import BugKind

FIG1_LINUX_S5P_MFC = """
struct platform_device { int irq; };
struct mfc_dev { struct platform_device *plat_dev; int num; };
static struct mfc_dev the_dev;
static int s5p_mfc_probe(struct platform_device *pdev) {
    struct mfc_dev *dev = &the_dev;
    dev->plat_dev = pdev;
    if (!dev->plat_dev) {
        int err = pdev->irq;
        return -19;
    }
    return 0;
}
struct platform_driver { int (*probe)(struct platform_device *p); };
static struct platform_driver s5p_mfc_driver = { .probe = s5p_mfc_probe };
"""

FIG3_ZEPHYR_FRIEND_SET = """
struct bt_mesh_cfg_srv { int frnd; int relay; };
struct bt_mesh_model { struct bt_mesh_cfg_srv *user_data; int id; };
static void send_friend_status(struct bt_mesh_model *model) {
    struct bt_mesh_cfg_srv *cfg = model->user_data;
    int x = cfg->frnd;
}
static void friend_set(struct bt_mesh_model *model) {
    struct bt_mesh_cfg_srv *cfg = model->user_data;
    if (!cfg) { goto send_status; }
    cfg->relay = 1;
send_status:
    send_friend_status(model);
}
struct model_ops { void (*set)(struct bt_mesh_model *m); };
static struct model_ops friend_ops = { .set = friend_set };
"""

FIG9_FALSE_BUG = """
struct fb { int f; };
int sync_fb(struct fb *p, struct fb *q) {
    if (q == NULL)
        p->f = 0;
    struct fb *t = p;
    if (t->f != 0) {
        int v = q->f;
        return v;
    }
    return 0;
}
struct fb_ops { int (*sync)(struct fb *p, struct fb *q); };
static struct fb_ops fops = { .sync = sync_fb };
"""

FIG12A_MCDE_DSI = """
struct dsi { int lanes; int mode_flags; };
struct mcde { struct dsi *mdsi; int val; };
static void mcde_dsi_start(struct mcde *d) {
    if (d->mdsi->mode_flags & 1)
        d->val = d->val | 1;
    if (d->mdsi->lanes == 2)
        d->val = d->val | 2;
}
static int mcde_dsi_bind(struct mcde *d) {
    if (d->mdsi)
        d->val = 1;
    mcde_dsi_start(d);
    return 0;
}
struct component_ops { int (*bind)(struct mcde *d); };
static struct component_ops ops = { .bind = mcde_dsi_bind };
"""

FIG12C_RIOT_MAKE_MESSAGE = """
static int do_format(int size) {
    if (size > 64)
        return -1;
    return size;
}
int make_message(int size) {
    char *message = malloc(size);
    if (message == NULL)
        return -1;
    int n = do_format(size);
    if (n < 0)
        return -2;
    consume(message);
    free(message);
    return 0;
}
"""

FIG12D_TENCENTOS_PTHREAD = """
struct ktask { int knl_obj_type; int prio; };
static int knl_object_verify(struct ktask *obj) {
    return obj->knl_obj_type == 5;
}
static int tos_task_create(struct ktask *task) {
    return knl_object_verify(task);
}
int pthread_create(int prio) {
    struct ktask *the_ctl = kmalloc(sizeof(struct ktask));
    if (!the_ctl)
        return -12;
    int kerr = tos_task_create(the_ctl);
    the_ctl->prio = prio;
    kfree(the_ctl);
    return kerr;
}
"""

CASES = [
    ("fig1_s5p_mfc", FIG1_LINUX_S5P_MFC, BugKind.NPD, 1),
    ("fig3_friend_set", FIG3_ZEPHYR_FRIEND_SET, BugKind.NPD, 1),
    ("fig9_false_bug", FIG9_FALSE_BUG, BugKind.NPD, 0),
    ("fig12a_mcde_dsi", FIG12A_MCDE_DSI, BugKind.NPD, 2),
    ("fig12c_make_message", FIG12C_RIOT_MAKE_MESSAGE, BugKind.ML, 1),
    ("fig12d_pthread_create", FIG12D_TENCENTOS_PTHREAD, BugKind.UVA, 1),
]


@pytest.mark.parametrize("name,source,kind,expected", CASES, ids=[c[0] for c in CASES])
def test_case_study(benchmark, name, source, kind, expected):
    def run():
        return PATA().analyze_sources([(f"{name}.c", source)])

    result = benchmark(run)
    found = len(result.by_kind(kind))
    assert found == expected, f"{name}: expected {expected} {kind.short}, got {found}"
