# Convenience targets for the PATA reproduction.

PYTHON ?= python

.PHONY: install test bench bench-quick report lint-corpus clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow" -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-quick:
	REPRO_BENCH_SCALE=0.3 $(PYTHON) -m pytest benchmarks/ --benchmark-only

report:
	$(PYTHON) -m repro eval all --markdown evaluation-report.md

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results __pycache__
	find . -name "*.pyc" -delete
