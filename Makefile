# Convenience targets for the PATA reproduction.

PYTHON ?= python

.PHONY: install test bench bench-quick bench-parallel bench-prune bench-taint bench-race bench-xtaint bench-incremental bench-alias bench-ptaflow bench-serve report lint-corpus clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow" -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-quick:
	REPRO_BENCH_SCALE=0.3 $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Sequential-vs-parallel P2 comparison; writes BENCH_parallel.json.
# Override workers with e.g. `make bench-parallel REPRO_BENCH_WORKERS=2`.
# Scaling only shows at corpus scale: default 4.0 here (not the global
# bench default of 1.0) so P2 dominates the Amdahl serial phases.
REPRO_BENCH_SCALE ?= 4.0
bench-parallel:
	REPRO_BENCH_SCALE=$(REPRO_BENCH_SCALE) REPRO_BENCH_WORKERS=$(REPRO_BENCH_WORKERS) $(PYTHON) -m pytest benchmarks/bench_components.py -k parallel_vs_sequential -q --benchmark-disable

# Pruned-vs-unpruned P1.5 comparison; writes BENCH_prune.json.
bench-prune:
	$(PYTHON) -m pytest benchmarks/bench_components.py -k pruned_vs_unpruned -q --benchmark-disable

# Taint checker vs the grep-regime baseline on the taintlab corpus;
# writes BENCH_taint.json.
bench-taint:
	$(PYTHON) -m pytest benchmarks/bench_components.py -k taint_checker_vs_naive -q --benchmark-disable

# Race checker vs the lockset-only Eraser-regime baseline on the racelab
# corpus; writes BENCH_race.json.
bench-race:
	$(PYTHON) -m pytest benchmarks/bench_components.py -k race_checker_vs_eraser -q --benchmark-disable

# P2.6 cross-module taint vs the module-granular grep tier of the naive
# baseline on the firmlab multi-image corpus, plus the workers x
# cold/warm-cache report-identity differential; writes BENCH_xtaint.json.
bench-xtaint:
	$(PYTHON) -m pytest benchmarks/bench_components.py -k xtaint_checker_vs_naive -q --benchmark-disable

# Incremental cache cold/warm/one-function-edit comparison on the linux
# corpus; writes BENCH_incremental.json.
bench-incremental:
	$(PYTHON) -m pytest benchmarks/bench_components.py -k incremental_cold_warm_edit -q --benchmark-disable

# Tiered alias analysis on/off (cold interleaved pairs + warm cache) on
# the linux corpus; writes BENCH_alias.json.  Like bench-parallel the
# headline is defined at scale 4.0; smaller REPRO_BENCH_SCALE values
# stamp the payload degraded and gate only report identity.
bench-alias:
	REPRO_BENCH_SCALE=$(REPRO_BENCH_SCALE) $(PYTHON) -m pytest benchmarks/bench_components.py -k alias_tier_cold_warm -q --benchmark-disable

# P1.8 flow-sensitive tier (--alias-tier flow) vs the untiered engine
# (cold interleaved pairs + warm cache) on the linux corpus; writes
# BENCH_ptaflow.json.  The 2x headline is defined at scale 4.0; smaller
# REPRO_BENCH_SCALE values stamp the payload degraded and gate only
# report identity.
bench-ptaflow:
	REPRO_BENCH_SCALE=$(REPRO_BENCH_SCALE) $(PYTHON) -m pytest benchmarks/bench_components.py -k ptaflow_cold_warm -q --benchmark-disable

# Resident daemon (warm socket query) vs a cold one-shot CLI subprocess
# on the linux corpus; writes BENCH_serve.json.  The 8x replay headline
# is defined at scale 1.0; smaller REPRO_BENCH_SCALE values stamp the
# payload degraded and gate only a 2x floor.
bench-serve:
	REPRO_BENCH_SCALE=$(REPRO_BENCH_SCALE) $(PYTHON) -m pytest benchmarks/bench_components.py -k serve_resident -q --benchmark-disable

# IR-verify every generated corpus module (all evaluation profiles plus
# the taintlab/racelab checker corpora).
lint-corpus:
	$(PYTHON) -m pytest tests/test_corpus_verify.py -q

report:
	$(PYTHON) -m repro eval all --markdown evaluation-report.md

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results __pycache__
	find . -name "*.pyc" -delete
